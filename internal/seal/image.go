// Enclave checkpoint images: the payload format inside KindCheckpoint
// sealed blobs. The codec is position-independent — secure pages are
// referenced by *logical index* (0 = first owned page in ascending
// PageNr order), so an image taken on one board instantiates onto any
// set of free pages on another. Insecure mappings keep their physical
// addresses: insecure RAM is the same on every board.
//
// The same code runs in the concrete monitor, the functional spec, and
// offline tooling, so the three agree word-for-word on what a
// checkpoint contains.
package seal

import (
	"errors"

	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/pagedb"
	"repro/internal/sha2"
)

// ErrImage reports a structurally invalid checkpoint image. The monitor
// maps it (and any seal failure) to KOM_ERR_SEAL_INVALID.
var ErrImage = errors.New("seal: invalid checkpoint image")

// ErrEncode reports an enclave that cannot be imaged (e.g. a stopped
// enclave whose page tables were already partially removed).
var ErrEncode = errors.New("seal: enclave not imageable")

// Image page-type tags (independent of the monitor's PageDB encoding).
const (
	imgThread uint32 = 1
	imgL1     uint32 = 2
	imgL2     uint32 = 3
	imgData   uint32 = 4
	imgSpare  uint32 = 5
)

// imageVersion is the checkpoint payload format version.
const imageVersion uint32 = 1

// l1Absent marks an image with no L1 page table (only legal for stopped
// enclaves, whose structural invariants are already relaxed).
const l1Absent uint32 = 0xFFFFFFFF

// imageHeaderWords: version, state, N, l1 index, Measured[8], hash
// h[8], nbuf, lenL, lenH, 16-word hash block buffer.
const imageHeaderWords = 4 + 8 + 8 + 3 + 16

// Per-page payload word counts by image type (plus one type word each).
const (
	threadWords = 37
	l1Words     = mmu.L1Entries
	l2Words     = 2 * mmu.L2Entries // flag/target word pair per entry
	dataWords   = mem.PageWords
)

// Image is a decoded checkpoint: one enclave, relocated to logical page
// indices.
type Image struct {
	State    pagedb.ASState
	Measured [8]uint32
	Hash     sha2.Hash // running measurement state, resumes on restore
	L1Index  int       // logical index of the L1 page table, -1 if absent
	Pages    []PageImage
}

// PageImage is one owned page. Exactly one payload field is set, per
// Type; spare pages carry none.
type PageImage struct {
	Type   pagedb.PageType
	Thread *pagedb.Thread
	L1     *L1Map
	L2     *L2Map
	Data   *pagedb.Data
}

// L1Map is an L1 page table with logical L2 targets.
type L1Map struct {
	Present [mmu.L1Entries]bool
	Target  [mmu.L1Entries]int // logical index of the L2 table
}

// L2Map is an L2 page table with logical data targets (secure entries)
// or physical insecure addresses (insecure entries).
type L2Map struct {
	Entries [mmu.L2Entries]L2MapEntry
}

// L2MapEntry mirrors pagedb.L2Entry with a relocatable target.
type L2MapEntry struct {
	Valid  bool
	Secure bool
	Write  bool
	Exec   bool
	Target uint32 // logical data index if Secure, insecure PA otherwise
}

// ImageWords returns the encoded payload size for an enclave owning the
// given page mix, so callers can size the destination window before
// asking the monitor to checkpoint.
func ImageWords(threads, l1, l2, data, spares int) int {
	n := threads + l1 + l2 + data + spares // one type word per page
	return imageHeaderWords + n +
		threads*threadWords + l1*l1Words + l2*l2Words + data*dataWords
}

// EncodeEnclave serialises the enclave rooted at as from a decoded
// PageDB into image payload words. The page order — and therefore the
// logical index of every page — is OwnedBy(as): ascending PageNr, a
// fact the untrusted OS can reproduce to build its own manifest.
func EncodeEnclave(d *pagedb.DB, as pagedb.PageNr) ([]uint32, error) {
	a := d.Addrspace(as)
	if a == nil {
		return nil, ErrEncode
	}
	owned := d.OwnedBy(as)
	logical := make(map[pagedb.PageNr]int, len(owned))
	for i, pg := range owned {
		logical[pg] = i
	}

	l1idx := l1Absent
	if a.L1PTSet {
		i, ok := logical[a.L1PT]
		if !ok || d.Get(a.L1PT).Type != pagedb.TypeL1PT {
			return nil, ErrEncode
		}
		l1idx = uint32(i)
	}

	out := make([]uint32, 0, imageHeaderWords)
	out = append(out, imageVersion, uint32(a.State), uint32(len(owned)), l1idx)
	out = append(out, a.Measured[:]...)
	h, buf, nbuf, length := a.Measurement.Marshal()
	out = append(out, h[:]...)
	out = append(out, uint32(nbuf), uint32(length), uint32(length>>32))
	out = append(out, sha2.BytesToWords(buf[:])...)

	for _, pg := range owned {
		e := d.Get(pg)
		switch e.Type {
		case pagedb.TypeThread:
			t := e.Thread
			out = append(out, imgThread, t.EntryPoint, boolWord(t.Entered))
			out = append(out, t.Ctx.R[:]...)
			out = append(out, t.Ctx.SP, t.Ctx.LR, t.Ctx.PC, t.Ctx.CPSR)
			out = append(out, t.Handler, boolWord(t.InHandler))
			out = append(out, t.VerifyData[:]...)
			out = append(out, t.VerifyMeasure[:]...)
		case pagedb.TypeL1PT:
			out = append(out, imgL1)
			for s := 0; s < mmu.L1Entries; s++ {
				if !e.L1.Present[s] {
					out = append(out, 0)
					continue
				}
				i, ok := logical[e.L1.L2[s]]
				if !ok || d.Get(e.L1.L2[s]).Type != pagedb.TypeL2PT {
					return nil, ErrEncode
				}
				out = append(out, uint32(i)+1)
			}
		case pagedb.TypeL2PT:
			out = append(out, imgL2)
			for s := 0; s < mmu.L2Entries; s++ {
				le := e.L2.Entries[s]
				if !le.Valid {
					out = append(out, 0, 0)
					continue
				}
				flags := uint32(1) | boolWord(le.Secure)<<1 | boolWord(le.Write)<<2 | boolWord(le.Exec)<<3
				target := le.InsecureAddr
				if le.Secure {
					i, ok := logical[le.Page]
					if !ok || d.Get(le.Page).Type != pagedb.TypeData {
						return nil, ErrEncode
					}
					target = uint32(i)
				}
				out = append(out, flags, target)
			}
		case pagedb.TypeData:
			out = append(out, imgData)
			out = append(out, e.Data.Contents[:]...)
		case pagedb.TypeSpare:
			out = append(out, imgSpare)
		default:
			return nil, ErrEncode
		}
	}
	return out, nil
}

func boolWord(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// DecodeImage parses and structurally validates an image payload. It is
// strict: every reserved encoding, dangling logical reference, shared
// L2 table, or length mismatch fails. A decoded image instantiated onto
// free pages always satisfies pagedb.Validate.
func DecodeImage(payload []uint32) (*Image, error) {
	r := &wordReader{ws: payload}
	ver, ok1 := r.word()
	state, ok2 := r.word()
	n, ok3 := r.word()
	l1idx, ok4 := r.word()
	if !ok1 || !ok2 || !ok3 || !ok4 || ver != imageVersion {
		return nil, ErrImage
	}
	if state != uint32(pagedb.ASFinal) && state != uint32(pagedb.ASStopped) {
		return nil, ErrImage
	}
	if n > 4096 {
		return nil, ErrImage
	}
	if l1idx != l1Absent {
		if l1idx >= n {
			return nil, ErrImage
		}
	} else if state != uint32(pagedb.ASStopped) {
		return nil, ErrImage
	}

	img := &Image{State: pagedb.ASState(state), L1Index: -1}
	if l1idx != l1Absent {
		img.L1Index = int(l1idx)
	}
	if !r.words(img.Measured[:]) {
		return nil, ErrImage
	}
	var h [8]uint32
	if !r.words(h[:]) {
		return nil, ErrImage
	}
	nbuf, ok1 := r.word()
	lenL, ok2 := r.word()
	lenH, ok3 := r.word()
	var bufWords [16]uint32
	if !ok1 || !ok2 || !ok3 || !r.words(bufWords[:]) {
		return nil, ErrImage
	}
	length := uint64(lenL) | uint64(lenH)<<32
	if nbuf >= sha2.BlockSize || uint64(nbuf) != length%sha2.BlockSize {
		return nil, ErrImage
	}
	var buf [sha2.BlockSize]byte
	copy(buf[:], sha2.WordsToBytes(bufWords[:]))
	img.Hash.Unmarshal(h, buf, int(nbuf), length)

	img.Pages = make([]PageImage, n)
	for i := range img.Pages {
		if err := decodePage(r, &img.Pages[i], n); err != nil {
			return nil, err
		}
	}
	if r.off != len(payload) {
		return nil, ErrImage // trailing garbage
	}
	return img, checkStructure(img)
}

func decodePage(r *wordReader, p *PageImage, n uint32) error {
	typ, ok := r.word()
	if !ok {
		return ErrImage
	}
	switch typ {
	case imgThread:
		t := &pagedb.Thread{}
		var ws [threadWords]uint32
		if !r.words(ws[:]) {
			return ErrImage
		}
		t.EntryPoint = ws[0]
		if ws[1] > 1 || ws[20] > 1 {
			return ErrImage
		}
		t.Entered = ws[1] == 1
		copy(t.Ctx.R[:], ws[2:15])
		t.Ctx.SP, t.Ctx.LR, t.Ctx.PC, t.Ctx.CPSR = ws[15], ws[16], ws[17], ws[18]
		t.Handler = ws[19]
		if t.Handler >= 1<<30 {
			return ErrImage
		}
		t.InHandler = ws[20] == 1
		copy(t.VerifyData[:], ws[21:29])
		copy(t.VerifyMeasure[:], ws[29:37])
		p.Type, p.Thread = pagedb.TypeThread, t
	case imgL1:
		m := &L1Map{}
		var ws [l1Words]uint32
		if !r.words(ws[:]) {
			return ErrImage
		}
		for s, w := range ws {
			if w == 0 {
				continue
			}
			if w > n {
				return ErrImage
			}
			m.Present[s] = true
			m.Target[s] = int(w - 1)
		}
		p.Type, p.L1 = pagedb.TypeL1PT, m
	case imgL2:
		m := &L2Map{}
		var ws [l2Words]uint32
		if !r.words(ws[:]) {
			return ErrImage
		}
		for s := 0; s < mmu.L2Entries; s++ {
			flags, target := ws[s*2], ws[s*2+1]
			if flags == 0 {
				if target != 0 {
					return ErrImage
				}
				continue
			}
			if flags&1 == 0 || flags > 15 {
				return ErrImage
			}
			e := L2MapEntry{
				Valid:  true,
				Secure: flags&2 != 0,
				Write:  flags&4 != 0,
				Exec:   flags&8 != 0,
				Target: target,
			}
			if e.Secure {
				if target >= n {
					return ErrImage
				}
			} else if target%mem.PageSize != 0 {
				return ErrImage
			}
			m.Entries[s] = e
		}
		p.Type, p.L2 = pagedb.TypeL2PT, m
	case imgData:
		d := &pagedb.Data{}
		if !r.words(d.Contents[:]) {
			return ErrImage
		}
		p.Type, p.Data = pagedb.TypeData, d
	case imgSpare:
		p.Type = pagedb.TypeSpare
	default:
		return ErrImage
	}
	return nil
}

// checkStructure enforces the cross-page invariants pagedb.Validate
// demands of a live enclave: L1 at the claimed index and nowhere else,
// L1 slots targeting L2 pages, L2 secure entries targeting data pages,
// no L2 table shared between two L1 slots, and thread-vs-state
// consistency. The thread Entered / ASInit rule is vacuous here: images
// only carry Final or Stopped states.
func checkStructure(img *Image) error {
	for i, p := range img.Pages {
		if (p.Type == pagedb.TypeL1PT) != (i == img.L1Index) {
			return ErrImage
		}
	}
	l2Parents := make(map[int]int)
	for _, p := range img.Pages {
		switch p.Type {
		case pagedb.TypeL1PT:
			for s := 0; s < mmu.L1Entries; s++ {
				if !p.L1.Present[s] {
					continue
				}
				t := p.L1.Target[s]
				if img.Pages[t].Type != pagedb.TypeL2PT {
					return ErrImage
				}
				if l2Parents[t]++; l2Parents[t] > 1 {
					return ErrImage
				}
			}
		case pagedb.TypeL2PT:
			for s := 0; s < mmu.L2Entries; s++ {
				e := p.L2.Entries[s]
				if e.Valid && e.Secure && img.Pages[e.Target].Type != pagedb.TypeData {
					return ErrImage
				}
			}
		}
	}
	return nil
}

// CheckInsecure reports whether every insecure mapping in the image
// targets an acceptable physical page (the caller supplies the board's
// insecure-range predicate).
func (img *Image) CheckInsecure(ok func(pa uint32) bool) bool {
	for _, p := range img.Pages {
		if p.Type != pagedb.TypeL2PT {
			continue
		}
		for s := 0; s < mmu.L2Entries; s++ {
			e := p.L2.Entries[s]
			if e.Valid && !e.Secure && !ok(e.Target) {
				return false
			}
		}
	}
	return true
}

// Instantiate writes the image into d onto the given pages: pages[0]
// becomes the addrspace, pages[1+i] logical page i. The caller has
// already verified the pages are free and distinct; d is mutated in
// place (spec callers pass a clone).
func (img *Image) Instantiate(d *pagedb.DB, pages []pagedb.PageNr) {
	as := pages[0]
	a := &pagedb.Addrspace{
		State:    img.State,
		RefCount: len(img.Pages),
		Measured: img.Measured,
	}
	a.Measurement = img.Hash
	if img.L1Index >= 0 {
		a.L1PT = pages[1+img.L1Index]
		a.L1PTSet = true
	}
	d.Pages[as] = pagedb.Entry{Type: pagedb.TypeAddrspace, Owner: as, AS: a}

	for i, p := range img.Pages {
		pg := pages[1+i]
		e := pagedb.Entry{Type: p.Type, Owner: as}
		switch p.Type {
		case pagedb.TypeThread:
			t := *p.Thread
			e.Thread = &t
		case pagedb.TypeL1PT:
			l1 := &pagedb.L1PT{}
			for s := 0; s < mmu.L1Entries; s++ {
				if p.L1.Present[s] {
					l1.Present[s] = true
					l1.L2[s] = pages[1+p.L1.Target[s]]
				}
			}
			e.L1 = l1
		case pagedb.TypeL2PT:
			l2 := &pagedb.L2PT{}
			for s := 0; s < mmu.L2Entries; s++ {
				me := p.L2.Entries[s]
				if !me.Valid {
					continue
				}
				le := pagedb.L2Entry{Valid: true, Secure: me.Secure, Write: me.Write, Exec: me.Exec}
				if me.Secure {
					le.Page = pages[1+me.Target]
				} else {
					le.InsecureAddr = me.Target
				}
				l2.Entries[s] = le
			}
			e.L2 = l2
		case pagedb.TypeData:
			dd := *p.Data
			e.Data = &dd
		}
		d.Pages[pg] = e
	}
}

type wordReader struct {
	ws  []uint32
	off int
}

func (r *wordReader) word() (uint32, bool) {
	if r.off >= len(r.ws) {
		return 0, false
	}
	w := r.ws[r.off]
	r.off++
	return w, true
}

func (r *wordReader) words(dst []uint32) bool {
	if r.off+len(dst) > len(r.ws) {
		return false
	}
	copy(dst, r.ws[r.off:r.off+len(dst)])
	r.off += len(dst)
	return true
}
