package pagedb

import (
	"math/rand"
	"testing"
)

// randomDB builds a structurally valid PageDB with nAS enclaves in random
// lifecycle states, for property testing Clone/Equal/Validate.
func randomDB(rnd *rand.Rand, nAS int) *DB {
	d := New(8 * nAS)
	for i := 0; i < nAS; i++ {
		base := PageNr(i * 8)
		state := ASState(rnd.Intn(3))
		as := &Addrspace{State: state, L1PT: base + 1, L1PTSet: true}
		d.Pages[base] = Entry{Type: TypeAddrspace, Owner: base, AS: as}
		l1 := &L1PT{}
		l1.Present[0] = true
		l1.L2[0] = base + 2
		d.Pages[base+1] = Entry{Type: TypeL1PT, Owner: base, L1: l1}
		l2 := &L2PT{}
		l2.Entries[rnd.Intn(16)] = L2Entry{Valid: true, Secure: true, Page: base + 3, Write: rnd.Intn(2) == 0}
		d.Pages[base+2] = Entry{Type: TypeL2PT, Owner: base, L2: l2}
		data := &Data{}
		for j := 0; j < 8; j++ {
			data.Contents[rnd.Intn(1024)] = rnd.Uint32()
		}
		d.Pages[base+3] = Entry{Type: TypeData, Owner: base, Data: data}
		th := &Thread{EntryPoint: rnd.Uint32() % (1 << 30), Entered: state == ASFinal && rnd.Intn(2) == 0}
		d.Pages[base+4] = Entry{Type: TypeThread, Owner: base, Thread: th}
		refs := 4
		if rnd.Intn(2) == 0 {
			d.Pages[base+5] = Entry{Type: TypeSpare, Owner: base}
			refs++
		}
		as.RefCount = refs
		as.Measurement.WriteWords([]uint32{rnd.Uint32()})
		if state != ASInit {
			as.Measured = as.Measurement.SumWords()
		}
	}
	return d
}

func TestPropertyRandomDBsValidate(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		d := randomDB(rnd, 1+rnd.Intn(4))
		if err := d.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPropertyCloneEqualRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		d := randomDB(rnd, 1+rnd.Intn(4))
		c := d.Clone()
		if !d.Equal(c) || !c.Equal(d) {
			t.Fatalf("trial %d: clone not equal", trial)
		}
		// Any single-field mutation breaks equality.
		pick := PageNr(rnd.Intn(d.NPages))
		switch e := c.Get(pick); e.Type {
		case TypeData:
			e.Data.Contents[rnd.Intn(1024)] ^= 1
		case TypeThread:
			e.Thread.Entered = !e.Thread.Entered
		case TypeAddrspace:
			e.AS.RefCount++
		case TypeL2PT:
			e.L2.Entries[0].Valid = !e.L2.Entries[0].Valid
		case TypeL1PT:
			e.L1.Present[10] = !e.L1.Present[10]
		default:
			// Toggle free <-> spare so the mutation is always visible.
			if e.Type == TypeFree {
				c.Pages[pick] = Entry{Type: TypeSpare, Owner: 0}
			} else {
				c.Pages[pick] = Entry{}
			}
		}
		if d.Equal(c) {
			t.Fatalf("trial %d: mutation of page %d (type %v) not detected",
				trial, pick, d.Get(pick).Type)
		}
		// The original is untouched (deep clone).
		if err := d.Validate(); err != nil {
			t.Fatalf("trial %d: original corrupted: %v", trial, err)
		}
	}
}

func TestPropertyOwnedByConsistentWithRefCount(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		d := randomDB(rnd, 1+rnd.Intn(4))
		for i := range d.Pages {
			n := PageNr(i)
			if d.Get(n).Type != TypeAddrspace {
				continue
			}
			if got := len(d.OwnedBy(n)); got != d.Get(n).AS.RefCount {
				t.Fatalf("trial %d: OwnedBy(%d)=%d, refcount=%d", trial, n, got, d.Get(n).AS.RefCount)
			}
		}
	}
}
