package pagedb

import (
	"testing"

	"repro/internal/mmu"
)

// buildValidDB constructs a small, fully valid PageDB:
//
//	page 0: addrspace (refcount 4)
//	page 1: L1PT, slot 0 -> page 2
//	page 2: L2PT, entry 0 -> data page 3, entry 1 -> insecure
//	page 3: data
//	page 4: thread
//	page 5: spare owned by addrspace 0
//	pages 6..: free
func buildValidDB(t *testing.T) *DB {
	t.Helper()
	d := New(8)
	d.Pages[0] = Entry{Type: TypeAddrspace, Owner: 0, AS: &Addrspace{
		State: ASInit, L1PT: 1, L1PTSet: true, RefCount: 5,
	}}
	l1 := &L1PT{}
	l1.Present[0] = true
	l1.L2[0] = 2
	d.Pages[1] = Entry{Type: TypeL1PT, Owner: 0, L1: l1}
	l2 := &L2PT{}
	l2.Entries[0] = L2Entry{Valid: true, Secure: true, Page: 3, Write: true}
	l2.Entries[1] = L2Entry{Valid: true, Secure: false, InsecureAddr: 0x8000_0000, Write: true}
	d.Pages[2] = Entry{Type: TypeL2PT, Owner: 0, L2: l2}
	d.Pages[3] = Entry{Type: TypeData, Owner: 0, Data: &Data{}}
	d.Pages[4] = Entry{Type: TypeThread, Owner: 0, Thread: &Thread{EntryPoint: 0x1000}}
	d.Pages[5] = Entry{Type: TypeSpare, Owner: 0}
	if err := d.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return d
}

func TestValidateAcceptsValidDB(t *testing.T) {
	buildValidDB(t)
}

func TestValidateEmptyDB(t *testing.T) {
	if err := New(16).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadRefcount(t *testing.T) {
	d := buildValidDB(t)
	d.Pages[0].AS.RefCount = 2
	if err := d.Validate(); err == nil {
		t.Fatal("bad refcount not caught")
	}
}

func TestValidateCatchesForeignOwner(t *testing.T) {
	d := buildValidDB(t)
	d.Pages[3].Owner = 3 // data page owned by itself (not an addrspace)
	if err := d.Validate(); err == nil {
		t.Fatal("non-addrspace owner not caught")
	}
}

func TestValidateCatchesCrossEnclaveMapping(t *testing.T) {
	d := buildValidDB(t)
	// Second enclave with a data page...
	d = grow(d, 12)
	d.Pages[8] = Entry{Type: TypeAddrspace, Owner: 8, AS: &Addrspace{State: ASInit, RefCount: 1}}
	d.Pages[9] = Entry{Type: TypeData, Owner: 8, Data: &Data{}}
	if err := d.Validate(); err != nil {
		t.Fatalf("setup: %v", err)
	}
	// ...mapped from the first enclave's L2: a cross-enclave double map.
	d.Pages[2].L2.Entries[5] = L2Entry{Valid: true, Secure: true, Page: 9}
	if err := d.Validate(); err == nil {
		t.Fatal("cross-enclave mapping not caught")
	}
}

func grow(d *DB, n int) *DB {
	nd := New(n)
	copy(nd.Pages, d.Pages)
	return nd
}

func TestValidateCatchesMappedNonData(t *testing.T) {
	d := buildValidDB(t)
	d.Pages[2].L2.Entries[7] = L2Entry{Valid: true, Secure: true, Page: 4} // thread page mapped
	if err := d.Validate(); err == nil {
		t.Fatal("leaf-mapped thread page not caught")
	}
}

func TestValidateCatchesDanglingL1(t *testing.T) {
	d := buildValidDB(t)
	d.Pages[1].L1.Present[9] = true
	d.Pages[1].L1.L2[9] = 7 // free page
	if err := d.Validate(); err == nil {
		t.Fatal("L1 slot pointing at free page not caught")
	}
}

func TestValidateCatchesSharedL2(t *testing.T) {
	d := buildValidDB(t)
	d.Pages[1].L1.Present[3] = true
	d.Pages[1].L1.L2[3] = 2 // same L2 in two slots
	if err := d.Validate(); err == nil {
		t.Fatal("shared L2 table not caught")
	}
}

func TestValidateCatchesEnteredThreadInInitEnclave(t *testing.T) {
	d := buildValidDB(t)
	d.Pages[4].Thread.Entered = true // addrspace still ASInit
	if err := d.Validate(); err == nil {
		t.Fatal("entered thread in non-final enclave not caught")
	}
}

func TestValidateCatchesMalformedPayload(t *testing.T) {
	d := buildValidDB(t)
	d.Pages[3].Thread = &Thread{} // data page with a thread payload too
	if err := d.Validate(); err == nil {
		t.Fatal("malformed payload not caught")
	}
}

func TestValidateCatchesUnalignedInsecureAddr(t *testing.T) {
	d := buildValidDB(t)
	d.Pages[2].L2.Entries[2] = L2Entry{Valid: true, InsecureAddr: 0x8000_0004}
	if err := d.Validate(); err == nil {
		t.Fatal("unaligned insecure mapping not caught")
	}
}

func TestValidateCatchesAddrspaceOwnedByOther(t *testing.T) {
	d := buildValidDB(t)
	d.Pages[0].Owner = 3
	if err := d.Validate(); err == nil {
		t.Fatal("addrspace with non-self owner not caught")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := buildValidDB(t)
	d.Pages[3].Data.Contents[17] = 0xaa
	c := d.Clone()
	if !d.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Pages[3].Data.Contents[17] = 0xbb
	if d.Pages[3].Data.Contents[17] != 0xaa {
		t.Fatal("clone shares data payload")
	}
	c.Pages[0].AS.RefCount++
	if d.Pages[0].AS.RefCount != 5 {
		t.Fatal("clone shares addrspace payload")
	}
	if d.Equal(c) {
		t.Fatal("Equal missed divergence")
	}
}

func TestEqualComparesMeasurement(t *testing.T) {
	d := buildValidDB(t)
	c := d.Clone()
	c.Pages[0].AS.Measurement.WriteWords([]uint32{1, 2, 3})
	if d.Equal(c) {
		t.Fatal("Equal ignored measurement state")
	}
}

func TestOwnedBy(t *testing.T) {
	d := buildValidDB(t)
	owned := d.OwnedBy(0)
	if len(owned) != 5 {
		t.Fatalf("OwnedBy = %v", owned)
	}
}

func TestLookupMapping(t *testing.T) {
	d := buildValidDB(t)
	pte, l2pg, idx := d.LookupMapping(0, 0x0000_0000)
	if pte == nil || l2pg != 2 || idx != 0 || !pte.Secure || pte.Page != 3 {
		t.Fatalf("LookupMapping(0,0) = %+v, l2=%d idx=%d", pte, l2pg, idx)
	}
	pte, _, _ = d.LookupMapping(0, 0x1000)
	if pte == nil || pte.Secure || pte.InsecureAddr != 0x8000_0000 {
		t.Fatalf("insecure mapping lookup = %+v", pte)
	}
	if pte, _, _ := d.LookupMapping(0, 0x2000); pte != nil {
		t.Fatal("lookup of unmapped va returned entry")
	}
	if pte, _, _ := d.LookupMapping(0, uint32(5)<<22); pte != nil {
		t.Fatal("lookup without L2 table returned entry")
	}
	if pte, _, _ := d.LookupMapping(3, 0); pte != nil {
		t.Fatal("lookup on non-addrspace returned entry")
	}
}

func TestL2ForVA(t *testing.T) {
	d := buildValidDB(t)
	if l2, ok := d.L2ForVA(0, 0x3000); !ok || l2 != 2 {
		t.Fatalf("L2ForVA = %d, %v", l2, ok)
	}
	if _, ok := d.L2ForVA(0, uint32(mmu.L1Span)); ok {
		t.Fatal("L2ForVA for empty slot succeeded")
	}
}

func TestIsFreeAndFree(t *testing.T) {
	d := buildValidDB(t)
	if d.IsFree(3) {
		t.Fatal("allocated page reported free")
	}
	if !d.IsFree(7) {
		t.Fatal("free page not reported free")
	}
	if d.IsFree(PageNr(100)) {
		t.Fatal("out-of-range page reported free")
	}
	d.Free(5)
	d.Pages[0].AS.RefCount--
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}
