package pagedb

import (
	"fmt"

	"repro/internal/mmu"
)

// Validate checks the internal-consistency invariants of §5.2: "reference
// counts are correct, internal references (including page table pointers)
// are to pages of the correct type belonging to the same address space,
// and all leaf pages mapped in a page table are either insecure pages or
// data pages allocated to the same address space." The paper proves every
// SMC and SVC preserves these; our test suites call Validate after every
// operation to discharge the same obligation at runtime.
//
// It returns nil if the PageDB is valid, or an error naming the first
// violated invariant.
func (d *DB) Validate() error {
	if len(d.Pages) != d.NPages {
		return fmt.Errorf("pagedb: %d entries for %d pages", len(d.Pages), d.NPages)
	}
	refs := make(map[PageNr]int)
	for i := range d.Pages {
		n := PageNr(i)
		e := &d.Pages[i]
		if err := d.validatePayloadShape(n, e); err != nil {
			return err
		}
		switch e.Type {
		case TypeFree:
			continue
		case TypeAddrspace:
			if e.Owner != n {
				return fmt.Errorf("pagedb: addrspace page %d owned by %d, want self", n, e.Owner)
			}
			if e.AS.L1PTSet && e.AS.State != ASStopped {
				l1 := e.AS.L1PT
				if !d.ValidPageNr(l1) || d.Pages[l1].Type != TypeL1PT {
					return fmt.Errorf("pagedb: addrspace %d L1PT pointer %d is not an L1PT page", n, l1)
				}
				if d.Pages[l1].Owner != n {
					return fmt.Errorf("pagedb: addrspace %d L1PT %d owned by %d", n, l1, d.Pages[l1].Owner)
				}
			}
		default:
			// All other allocated pages are owned by a valid addrspace.
			if !d.IsAddrspace(e.Owner) {
				return fmt.Errorf("pagedb: %v page %d owner %d is not an addrspace", e.Type, n, e.Owner)
			}
			refs[e.Owner]++
		}
		// Structural invariants over page-table references are enforced
		// only while the owning address space is not stopped: once
		// stopped, the enclave can never execute again and Remove is
		// permitted to free referenced pages in any order (the address
		// space itself, reference-counted, goes last). This mirrors the
		// paper's weakening of PageDB invariants for deallocation.
		if e.Type != TypeAddrspace && d.Pages[e.Owner].AS.State == ASStopped {
			continue
		}
		switch e.Type {
		case TypeThread:
			// A thread suspended mid-execution implies the enclave was
			// entered, which requires it to have been finalised.
			if e.Thread.Entered && d.Pages[e.Owner].AS.State == ASInit {
				return fmt.Errorf("pagedb: thread %d entered but addrspace %d not final", n, e.Owner)
			}
		case TypeL1PT:
			as := e.Owner
			if asEntry := d.Pages[as].AS; !asEntry.L1PTSet || asEntry.L1PT != n {
				return fmt.Errorf("pagedb: L1PT %d not referenced by its addrspace %d", n, as)
			}
			for idx, present := range e.L1.Present {
				if !present {
					continue
				}
				l2 := e.L1.L2[idx]
				if !d.ValidPageNr(l2) || d.Pages[l2].Type != TypeL2PT {
					return fmt.Errorf("pagedb: L1PT %d slot %d points to non-L2PT page %d", n, idx, l2)
				}
				if d.Pages[l2].Owner != as {
					return fmt.Errorf("pagedb: L1PT %d slot %d L2 %d owned by %d, want %d", n, idx, l2, d.Pages[l2].Owner, as)
				}
			}
		case TypeL2PT:
			as := e.Owner
			for idx := range e.L2.Entries {
				pte := &e.L2.Entries[idx]
				if !pte.Valid {
					continue
				}
				if pte.Secure {
					if !d.ValidPageNr(pte.Page) || d.Pages[pte.Page].Type != TypeData {
						return fmt.Errorf("pagedb: L2PT %d entry %d maps non-data page %d", n, idx, pte.Page)
					}
					if d.Pages[pte.Page].Owner != as {
						return fmt.Errorf("pagedb: L2PT %d entry %d maps page %d of addrspace %d, want %d",
							n, idx, pte.Page, d.Pages[pte.Page].Owner, as)
					}
				} else if pte.InsecureAddr%0x1000 != 0 {
					return fmt.Errorf("pagedb: L2PT %d entry %d insecure addr %#x unaligned", n, idx, pte.InsecureAddr)
				}
			}
		}
	}
	// Reference counts: each addrspace's RefCount equals the number of
	// pages it owns.
	for i := range d.Pages {
		n := PageNr(i)
		e := &d.Pages[i]
		if e.Type == TypeAddrspace && e.AS.RefCount != refs[n] {
			return fmt.Errorf("pagedb: addrspace %d refcount %d, actual owned pages %d", n, e.AS.RefCount, refs[n])
		}
	}
	// Every L1 slot must be referenced by at most one L1, every L2 by at
	// most one L1 slot, and every data page leaf-mapped at most... Komodo
	// permits a data page to be mapped at multiple VAs within the same
	// address space; what it must prevent is cross-enclave double mapping,
	// which the ownership checks above already rule out.
	if err := d.validateNoSharedPageTables(); err != nil {
		return err
	}
	return nil
}

// validatePayloadShape ensures exactly the payload matching the entry's
// type is present.
func (d *DB) validatePayloadShape(n PageNr, e *Entry) error {
	want := map[PageType]struct{ as, th, l1, l2, da bool }{
		TypeFree:      {},
		TypeAddrspace: {as: true},
		TypeThread:    {th: true},
		TypeL1PT:      {l1: true},
		TypeL2PT:      {l2: true},
		TypeData:      {da: true},
		TypeSpare:     {},
	}[e.Type]
	got := struct{ as, th, l1, l2, da bool }{
		e.AS != nil, e.Thread != nil, e.L1 != nil, e.L2 != nil, e.Data != nil,
	}
	if got != want {
		return fmt.Errorf("pagedb: page %d type %v has malformed payload %+v", n, e.Type, got)
	}
	return nil
}

// validateNoSharedPageTables checks that no L2PT page is referenced from
// two different L1 slots: page tables have a single parent.
func (d *DB) validateNoSharedPageTables() error {
	seen := make(map[PageNr]bool)
	for i := range d.Pages {
		e := &d.Pages[i]
		if e.Type != TypeL1PT || d.Pages[e.Owner].AS.State == ASStopped {
			continue
		}
		for idx, present := range e.L1.Present {
			if !present {
				continue
			}
			l2 := e.L1.L2[idx]
			if seen[l2] {
				return fmt.Errorf("pagedb: L2PT %d referenced from multiple L1 slots", l2)
			}
			seen[l2] = true
		}
	}
	return nil
}

// LookupMapping walks the abstract page tables of address space as and
// returns the L2 entry mapping va, along with the owning L2PT page and
// index. Returns nil if no L2 table or no valid mapping exists.
func (d *DB) LookupMapping(as PageNr, va uint32) (*L2Entry, PageNr, int) {
	asp := d.Addrspace(as)
	if asp == nil || !asp.L1PTSet {
		return nil, 0, 0
	}
	l1 := d.Pages[asp.L1PT].L1
	i1 := mmu.L1Index(va)
	if !l1.Present[i1] {
		return nil, 0, 0
	}
	l2pg := l1.L2[i1]
	i2 := mmu.L2Index(va)
	pte := &d.Pages[l2pg].L2.Entries[i2]
	if !pte.Valid {
		return nil, 0, 0
	}
	return pte, l2pg, i2
}

// L2ForVA returns the L2PT page covering va in address space as, if the
// relevant L1 slot is populated ("for a mapping call to succeed at a given
// virtual address the relevant page table must exist", §4).
func (d *DB) L2ForVA(as PageNr, va uint32) (PageNr, bool) {
	asp := d.Addrspace(as)
	if asp == nil || !asp.L1PTSet {
		return 0, false
	}
	l1 := d.Pages[asp.L1PT].L1
	i1 := mmu.L1Index(va)
	if !l1.Present[i1] {
		return 0, false
	}
	return l1.L2[i1], true
}
