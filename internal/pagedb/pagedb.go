// Package pagedb defines the abstract PageDB at the heart of Komodo's
// specification (§5.2): "a map from page numbers to entries, each of which
// has one of the six types described in §4" — address space, thread,
// first-level page table, second-level page table, data page, and spare
// page. The PageDB is "roughly equivalent to the EPCM of SGX; for every
// secure page, it stores the page's allocation state, and, if allocated,
// its type and a reference to the owning enclave" (§4).
//
// The functional specification (internal/spec) computes over this
// representation; the concrete monitor (internal/monitor) maintains an
// equivalent structure in secure RAM and is checked against it by the
// refinement harness. The package also provides the validity invariants
// the paper proves are preserved by every SMC and SVC.
package pagedb

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/sha2"
)

// PageNr names a secure page. Valid page numbers are 0 <= n < db.NPages.
type PageNr uint32

// PageType is the allocation type of a secure page.
type PageType int

const (
	TypeFree PageType = iota
	TypeAddrspace
	TypeThread
	TypeL1PT
	TypeL2PT
	TypeData
	TypeSpare
)

func (t PageType) String() string {
	switch t {
	case TypeFree:
		return "free"
	case TypeAddrspace:
		return "addrspace"
	case TypeThread:
		return "thread"
	case TypeL1PT:
		return "l1pt"
	case TypeL2PT:
		return "l2pt"
	case TypeData:
		return "data"
	case TypeSpare:
		return "spare"
	}
	return fmt.Sprintf("PageType(%d)", int(t))
}

// ASState is the address-space lifecycle: created (accepting mappings),
// finalised (executable, measurement fixed), stopped (deallocatable).
type ASState int

const (
	ASInit ASState = iota
	ASFinal
	ASStopped
)

func (s ASState) String() string {
	switch s {
	case ASInit:
		return "init"
	case ASFinal:
		return "final"
	case ASStopped:
		return "stopped"
	}
	return fmt.Sprintf("ASState(%d)", int(s))
}

// UserCtx is the user-visible register context saved in a thread page when
// an enclave is suspended by an interrupt, and restored by Resume. It is
// precisely the user-visible state: R0–R12, the user-banked SP and LR, the
// PC, and the condition flags.
type UserCtx struct {
	R    [13]uint32
	SP   uint32
	LR   uint32
	PC   uint32
	CPSR uint32 // N/Z/C/V flag bits in the PSR word encoding
}

// Addrspace is the payload of an address-space page.
type Addrspace struct {
	State    ASState
	L1PT     PageNr
	L1PTSet  bool // an L1 page table has been allocated
	RefCount int  // pages owned by this address space, excluding itself

	// Measurement is the running SHA-256 over the enclave-construction
	// trace (§4 "Attestation": the monitor hashes the sequence of page
	// allocation calls and their parameters). Fixed at Finalise.
	Measurement sha2.Hash
	// Measured holds the final measurement words once State >= ASFinal.
	Measured [8]uint32
}

// Thread is the payload of a thread page.
type Thread struct {
	EntryPoint uint32
	Entered    bool // suspended mid-execution; Enter is blocked, Resume allowed
	Ctx        UserCtx

	// Verify staging for the multi-step SVC verify ABI: data then
	// measurement staged by steps 0 and 1.
	VerifyData    [8]uint32
	VerifyMeasure [8]uint32

	// Dispatcher-interface state (the §9.2 extension): the registered
	// fault-upcall address (0 = none), and whether the thread is
	// currently executing its fault handler (a second fault then
	// terminates, avoiding handler livelock).
	Handler   uint32
	InHandler bool
}

// L1PT is the abstract first-level page table: l1index -> L2PT page.
type L1PT struct {
	// L2 maps each of the 256 L1 slots to an L2PT page; Present marks
	// allocated slots.
	L2      [mmu.L1Entries]PageNr
	Present [mmu.L1Entries]bool
}

// L2Entry is the abstract second-level PTE.
type L2Entry struct {
	Valid bool
	// Secure selects the target kind: a secure data page (Page) or an
	// insecure physical page (InsecureAddr).
	Secure       bool
	Page         PageNr // when Secure
	InsecureAddr uint32 // page-aligned physical address, when !Secure
	Write        bool
	Exec         bool
}

// L2PT is the abstract second-level page table.
type L2PT struct {
	Entries [mmu.L2Entries]L2Entry
}

// Data is the payload of a data page: its full contents. The specification
// tracks contents because "the contents of secure data pages must equal
// those in the PageDB" at enclave entry (§5.2).
type Data struct {
	Contents [mem.PageWords]uint32
}

// Entry is one PageDB slot. Exactly one payload pointer is non-nil for the
// corresponding type; free and spare pages carry none (spare page contents
// are not tracked: they are inaccessible until mapped, at which point they
// are zero-filled).
type Entry struct {
	Type  PageType
	Owner PageNr // owning address space (== self for TypeAddrspace)

	AS     *Addrspace
	Thread *Thread
	L1     *L1PT
	L2     *L2PT
	Data   *Data
}

// DB is the abstract PageDB.
type DB struct {
	NPages int
	Pages  []Entry // len == NPages; TypeFree means unallocated
}

// New returns a PageDB with n free pages.
func New(n int) *DB {
	return &DB{NPages: n, Pages: make([]Entry, n)}
}

// ValidPageNr reports whether n is in range.
func (d *DB) ValidPageNr(n PageNr) bool { return int(n) < d.NPages }

// Get returns the entry for page n; n must be valid.
func (d *DB) Get(n PageNr) *Entry { return &d.Pages[n] }

// IsFree reports whether page n is unallocated.
func (d *DB) IsFree(n PageNr) bool {
	return d.ValidPageNr(n) && d.Pages[n].Type == TypeFree
}

// IsAddrspace reports whether page n is an address-space page.
func (d *DB) IsAddrspace(n PageNr) bool {
	return d.ValidPageNr(n) && d.Pages[n].Type == TypeAddrspace
}

// Addrspace returns the address-space payload of page n, or nil.
func (d *DB) Addrspace(n PageNr) *Addrspace {
	if !d.IsAddrspace(n) {
		return nil
	}
	return d.Pages[n].AS
}

// Free clears page n back to the free state.
func (d *DB) Free(n PageNr) { d.Pages[n] = Entry{} }

// Census counts pages by allocation type, keyed by PageType.String().
// Telemetry snapshots embed it so a stats dump shows how secure RAM is
// divided between enclaves and the free pool.
func (d *DB) Census() map[string]int {
	out := make(map[string]int)
	for i := range d.Pages {
		out[d.Pages[i].Type.String()]++
	}
	return out
}

// OwnedBy returns the page numbers owned by address space as (excluding
// the address-space page itself), in ascending order.
func (d *DB) OwnedBy(as PageNr) []PageNr {
	var out []PageNr
	for i := range d.Pages {
		n := PageNr(i)
		e := &d.Pages[i]
		if e.Type != TypeFree && e.Type != TypeAddrspace && e.Owner == as {
			out = append(out, n)
		}
	}
	return out
}

// Clone deep-copies the PageDB. Used by the spec (which is pure: it returns
// a new PageDB rather than mutating), the refinement harness, and the
// noninterference bisimulation (which runs paired executions).
func (d *DB) Clone() *DB {
	nd := &DB{NPages: d.NPages, Pages: make([]Entry, len(d.Pages))}
	for i := range d.Pages {
		nd.Pages[i] = cloneEntry(d.Pages[i])
	}
	return nd
}

func cloneEntry(e Entry) Entry {
	ne := Entry{Type: e.Type, Owner: e.Owner}
	if e.AS != nil {
		as := *e.AS
		ne.AS = &as
	}
	if e.Thread != nil {
		th := *e.Thread
		ne.Thread = &th
	}
	if e.L1 != nil {
		l1 := *e.L1
		ne.L1 = &l1
	}
	if e.L2 != nil {
		l2 := *e.L2
		ne.L2 = &l2
	}
	if e.Data != nil {
		da := *e.Data
		ne.Data = &da
	}
	return ne
}

// Equal reports whether two PageDBs are identical (measurement chaining
// state included via the final digest of the running hash).
func (d *DB) Equal(o *DB) bool {
	if d.NPages != o.NPages {
		return false
	}
	for i := range d.Pages {
		if !EntriesEqual(&d.Pages[i], &o.Pages[i]) {
			return false
		}
	}
	return true
}

// EntriesEqual compares two entries structurally.
func EntriesEqual(a, b *Entry) bool {
	if a.Type != b.Type || a.Owner != b.Owner {
		return false
	}
	switch a.Type {
	case TypeAddrspace:
		x, y := a.AS, b.AS
		if x.State != y.State || x.L1PT != y.L1PT || x.L1PTSet != y.L1PTSet ||
			x.RefCount != y.RefCount || x.Measured != y.Measured {
			return false
		}
		// Compare running measurements by their digests.
		xm, ym := x.Measurement, y.Measurement
		return xm.Sum() == ym.Sum()
	case TypeThread:
		return *a.Thread == *b.Thread
	case TypeL1PT:
		return *a.L1 == *b.L1
	case TypeL2PT:
		return *a.L2 == *b.L2
	case TypeData:
		return *a.Data == *b.Data
	default:
		return true
	}
}
