// Package batch implements the batched notary signing subsystem
// (docs/BATCHING.md): a Merkle tree over queued sign requests and an
// aggregator that amortises one enclave crossing across a whole batch.
//
// The tree follows the RFC 6962 history-tree construction: leaf hashes are
// domain-separated from interior nodes (0x00 vs 0x01 prefix), a tree over n
// leaves splits at the largest power of two strictly less than n, and
// inclusion proofs are the standard audit paths. Any batch size works, not
// just powers of two.
//
// The trust model is deliberately asymmetric: the aggregator (and the whole
// HTTP server around it) is untrusted. Only the enclave-signed
// (root, counter) pair carries authority; a malicious batcher can delay or
// drop requests but cannot forge a receipt, because forging requires either
// a MAC over a root the enclave never signed or a second preimage in the
// tree. See docs/BATCHING.md §TCB.
package batch

import (
	"encoding/binary"
	"fmt"

	"repro/internal/kapi"
	"repro/internal/sha2"
)

// Domain-separation prefixes, per RFC 6962 §2.1.
const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

// NonceSize is the per-request nonce length in bytes. The nonce makes every
// leaf unique even when two tenants submit identical documents in one
// batch, so an inclusion proof commits to one specific submission.
const NonceSize = 16

// LeafHash computes the Merkle leaf for one sign request:
//
//	H(0x00 ‖ docDigest ‖ len(tenant) ‖ tenant ‖ nonce)
//
// docDigest is SHA-256 of the submitted document bytes (recomputable by the
// client), tenant is the admission token's tenant label, and nonce is the
// server-minted per-request nonce echoed in the receipt. The tenant length
// prefix keeps (tenant, nonce) framing unambiguous.
func LeafHash(docDigest [8]uint32, tenant string, nonce []byte) [8]uint32 {
	h := sha2.New()
	h.Write([]byte{leafPrefix})
	h.Write(sha2.WordsToBytes(docDigest[:]))
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(tenant)))
	h.Write(n[:])
	h.Write([]byte(tenant))
	h.Write(nonce)
	return h.SumWords()
}

// nodeHash combines two subtree roots: H(0x01 ‖ left ‖ right).
func nodeHash(left, right [8]uint32) [8]uint32 {
	h := sha2.New()
	h.Write([]byte{nodePrefix})
	h.Write(sha2.WordsToBytes(left[:]))
	h.Write(sha2.WordsToBytes(right[:]))
	return h.SumWords()
}

// splitPoint returns the largest power of two strictly less than n (n ≥ 2).
func splitPoint(n int) int {
	k := 1
	for k*2 < n {
		k *= 2
	}
	return k
}

// Root computes the Merkle tree hash over the given leaf hashes. A
// single-leaf tree's root is the leaf hash itself; an empty tree has no
// root (batches are never empty).
func Root(leaves [][8]uint32) [8]uint32 {
	switch len(leaves) {
	case 0:
		panic("batch: Root of empty leaf set")
	case 1:
		return leaves[0]
	}
	k := splitPoint(len(leaves))
	return nodeHash(Root(leaves[:k]), Root(leaves[k:]))
}

// Path computes the inclusion proof (audit path) for leaves[index]:
// sibling subtree roots ordered leaf-to-root, per RFC 6962 §2.1.1.
func Path(leaves [][8]uint32, index int) [][8]uint32 {
	if index < 0 || index >= len(leaves) {
		panic(fmt.Sprintf("batch: Path index %d out of range [0,%d)", index, len(leaves)))
	}
	if len(leaves) == 1 {
		return nil
	}
	k := splitPoint(len(leaves))
	if index < k {
		return append(Path(leaves[:k], index), Root(leaves[k:]))
	}
	return append(Path(leaves[k:], index-k), Root(leaves[:k]))
}

// rootFromPath recomputes the root committed to by (leaf, index, size,
// path). ok is false if the path has the wrong length for the claimed
// (index, size) position.
func rootFromPath(leaf [8]uint32, index, size int, path [][8]uint32) (root [8]uint32, ok bool) {
	if size == 1 {
		return leaf, len(path) == 0
	}
	if len(path) == 0 {
		return leaf, false
	}
	sib := path[len(path)-1]
	rest := path[:len(path)-1]
	k := splitPoint(size)
	if index < k {
		sub, ok := rootFromPath(leaf, index, k, rest)
		return nodeHash(sub, sib), ok
	}
	sub, ok := rootFromPath(leaf, index-k, size-k, rest)
	return nodeHash(sib, sub), ok
}

// VerifyInclusion reports whether leaf really is leaves[index] of a
// size-leaf Merkle tree with the given root. It fails closed: wrong index,
// wrong size, truncated or padded paths, and any tampered hash all return
// false.
func VerifyInclusion(leaf [8]uint32, index, size int, path [][8]uint32, root [8]uint32) bool {
	if index < 0 || size < 1 || index >= size {
		return false
	}
	got, ok := rootFromPath(leaf, index, size, path)
	return ok && got == root
}

// RootDigest is the Go reference for what the batch-notary guest signs:
//
//	SHA-256(kapi.BatchSigTag ‖ root[0..7] ‖ counter)
//
// a 10-word message with standard SHA-256 padding. The enclave computes
// this in KARM assembly (internal/kasm BatchNotaryProgram) and attests it;
// offline verification recomputes it here and checks the MAC against the
// notary's measured identity.
func RootDigest(root [8]uint32, counter uint32) [8]uint32 {
	h := sha2.New()
	h.WriteWords([]uint32{kapi.BatchSigTag})
	h.WriteWords(root[:])
	h.WriteWords([]uint32{counter})
	return h.SumWords()
}
