package batch

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
)

// Errors returned by Submit.
var (
	// ErrClosed: the aggregator has been drained and accepts no new work.
	ErrClosed = errors.New("batch: aggregator closed")
	// ErrSaturated: too many requests are already queued or in flight;
	// the caller should shed (429 + Retry-After).
	ErrSaturated = errors.New("batch: queue saturated")
)

// Request is one queued sign request: the client's document digest plus
// the identity material bound into the leaf.
type Request struct {
	DocDigest [8]uint32 // SHA-256 of the raw document bytes
	Tenant    string
	Nonce     [NonceSize]byte
	// Coalescable marks a request whose nonce the server minted (not
	// client-pinned): with Config.Dedup it may fold onto an already-open
	// leaf for the same (DocDigest, Tenant), adopting that leaf's nonce.
	// Any request — pinned or not — can open a leaf others coalesce onto.
	Coalescable bool
}

// SignedRoot is the enclave's signature over one sealed batch: the guest
// advanced the counter once and attested RootDigest(Root, Counter).
type SignedRoot struct {
	Root     [8]uint32
	Counter  uint32
	Digest   [8]uint32 // RootDigest(Root, Counter), recomputed Go-side
	MAC      [8]uint32
	Worker   int
	Epoch    int
	Restores int
}

// Receipt is what one client gets back: the shared batch signature plus
// this request's position proof. Nonce is the nonce actually bound into
// the leaf — the caller's own unless the request coalesced onto an
// earlier identical one, in which case it is that leaf's nonce (fold it
// into the proof so the receipt verifies offline). Coalesced counts the
// requests sharing the leaf (1 = not deduplicated).
type Receipt struct {
	SignedRoot
	Leaf      [8]uint32
	LeafIndex int
	BatchSize int
	Path      [][8]uint32
	Nonce     [NonceSize]byte
	Coalesced int
}

// SignFunc performs the single enclave entry for a sealed batch. It is
// called outside the aggregator lock, at most cfg.MaxConcurrent at a time
// implicitly (one per sealed batch; pool capacity bounds real concurrency).
type SignFunc func(ctx context.Context, root [8]uint32) (SignedRoot, error)

// Config parameterises an Aggregator.
type Config struct {
	// MaxBatch is K: a batch seals as soon as it holds K leaves.
	MaxBatch int
	// MinBatch, when in (0, MaxBatch), turns on adaptive sizing: the
	// close threshold starts at MinBatch and is retuned between MinBatch
	// and MaxBatch after every sealed batch from EWMAs of the observed
	// fill times and per-batch arrival counts, so light load seals small
	// batches fast (latency) and heavy load grows K toward the
	// crossing-cost optimum (throughput). 0 keeps K fixed at MaxBatch.
	MinBatch int
	// Dedup coalesces requests with identical (DocDigest, Tenant) inside
	// one open batch onto a single Merkle leaf: every coalesced caller
	// still gets its own offline-verifiable receipt (sharing the leaf's
	// nonce), but the tree — and the enclave crossing it costs — stops
	// growing with hot-document skew. Only Coalescable requests fold onto
	// an existing leaf; client-pinned nonces always get their own.
	Dedup bool
	// Window is T: a non-empty batch seals at most this long after its
	// first request arrived, even if it is short of K.
	Window time.Duration
	// MaxQueue bounds requests admitted but not yet signed (across the
	// open batch and all in-flight seals). Submit returns ErrSaturated
	// beyond it. Defaults to 4*MaxBatch.
	MaxQueue int
	// SignTimeout bounds one enclave sign call (default 5s). Sealing uses
	// its own context so one client's cancellation cannot abort a batch
	// that other clients are waiting on.
	SignTimeout time.Duration
	// Sign performs the enclave entry.
	Sign SignFunc
}

// Close reasons for sealed batches.
const (
	CloseFull   = "full"
	CloseWindow = "window"
	CloseDrain  = "drain"
)

type waiter struct {
	req Request
	ch  chan result // buffered 1; exactly one send per waiter
}

type result struct {
	receipt Receipt
	err     error
}

// leafGroup is one Merkle leaf of the open batch and the waiters it
// answers — usually one, more when identical requests coalesced.
type leafGroup struct {
	req     Request
	waiters []*waiter
}

// leafKey is the dedup identity: H(doc) and tenant, NOT the nonce —
// coalescing is exactly "same document under the same tenant label".
type leafKey struct {
	doc    [8]uint32
	tenant string
}

// Aggregator collects sign requests into batches, seals each batch into a
// Merkle tree, obtains one enclave signature per batch, and distributes
// per-request receipts. Safe for concurrent use.
type Aggregator struct {
	cfg      Config
	adaptive bool

	mu        sync.Mutex
	pending   []*leafGroup    // current open batch, one entry per leaf
	index     map[leafKey]int // dedup: leaf identity → pending index
	opened    time.Time       // when pending[0] arrived
	timer     *time.Timer     // window timer for the open batch
	gen       uint64          // open-batch generation, guards stale timers
	queued    int             // admitted but not yet signed (open + sealing)
	closed    bool
	k         int     // current close threshold (leaves per batch)
	sealing   int     // batches handed to Sign and not yet returned
	ewmaFill  float64 // EWMA of batch fill time, seconds
	ewmaCount float64 // EWMA of per-batch arrival count
	windowRun int     // consecutive window-closed seals (shrink evidence)

	stats statsInner
	fill  *obs.Histogram // first-enqueue → seal latency
}

type statsInner struct {
	batchesFull   uint64
	batchesWindow uint64
	batchesDrain  uint64
	signed        uint64 // receipts delivered across all batches
	signFailures  uint64
	saturated     uint64
	dedup         uint64 // requests coalesced onto an existing leaf
	sizeSum       uint64
	maxSize       int
	lastSize      int
}

// Stats is the JSON-facing snapshot, mergeable across a fleet.
type Stats struct {
	Batches        uint64  `json:"batches"`
	BatchesFull    uint64  `json:"batches_full"`
	BatchesWindow  uint64  `json:"batches_window"`
	BatchesDrain   uint64  `json:"batches_drain"`
	Signed         uint64  `json:"signed_requests"`
	SignFailures   uint64  `json:"sign_failures"`
	Saturated      uint64  `json:"saturated"`
	CrossingsSaved uint64  `json:"crossings_saved"`
	SizeSum        uint64  `json:"size_sum"`
	MeanSize       float64 `json:"mean_size"`
	MaxSize        int     `json:"max_size"`
	LastSize       int     `json:"last_size"`
	Pending        int     `json:"pending"`
	FillP50us      float64 `json:"fill_p50_us"`
	FillP95us      float64 `json:"fill_p95_us"`
	// KCurrent is the live close threshold (equals MaxBatch when sizing
	// is fixed); KMin/KMax are the adaptive bounds (0 when fixed). Dedup
	// counts sign requests coalesced onto an already-pending identical
	// leaf instead of widening the tree.
	KCurrent int    `json:"k_current"`
	KMin     int    `json:"k_min,omitempty"`
	KMax     int    `json:"k_max,omitempty"`
	Dedup    uint64 `json:"dedup_total"`
}

// Merge folds another snapshot into s (fleet-wide aggregation). Fill
// quantiles are not mergeable without the raw histograms; the max is kept.
func (s *Stats) Merge(o Stats) {
	s.Batches += o.Batches
	s.BatchesFull += o.BatchesFull
	s.BatchesWindow += o.BatchesWindow
	s.BatchesDrain += o.BatchesDrain
	s.Signed += o.Signed
	s.SignFailures += o.SignFailures
	s.Saturated += o.Saturated
	s.CrossingsSaved += o.CrossingsSaved
	s.SizeSum += o.SizeSum
	if s.Batches > 0 {
		s.MeanSize = float64(s.SizeSum) / float64(s.Batches)
	}
	if o.MaxSize > s.MaxSize {
		s.MaxSize = o.MaxSize
	}
	s.LastSize = o.LastSize
	s.Pending += o.Pending
	if o.FillP50us > s.FillP50us {
		s.FillP50us = o.FillP50us
	}
	if o.FillP95us > s.FillP95us {
		s.FillP95us = o.FillP95us
	}
	// K is a per-node gauge; a fleet merge keeps the widest view.
	if o.KCurrent > s.KCurrent {
		s.KCurrent = o.KCurrent
	}
	if s.KMin == 0 || (o.KMin > 0 && o.KMin < s.KMin) {
		s.KMin = o.KMin
	}
	if o.KMax > s.KMax {
		s.KMax = o.KMax
	}
	s.Dedup += o.Dedup
}

// New builds an Aggregator. cfg.Sign is required; MaxBatch defaults to 16,
// Window to 2ms, MaxQueue to 4*MaxBatch, SignTimeout to 5s.
func New(cfg Config) *Aggregator {
	if cfg.Sign == nil {
		panic("batch: Config.Sign is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 16
	}
	if cfg.Window <= 0 {
		cfg.Window = 2 * time.Millisecond
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxBatch
	}
	if cfg.SignTimeout <= 0 {
		cfg.SignTimeout = 5 * time.Second
	}
	a := &Aggregator{cfg: cfg, fill: obs.NewHistogram()}
	a.adaptive = cfg.MinBatch > 0 && cfg.MinBatch < cfg.MaxBatch
	if a.adaptive {
		a.k = cfg.MinBatch // start small; load grows it
	} else {
		a.k = cfg.MaxBatch
	}
	return a
}

// Submit queues one request and blocks until its receipt is ready, the
// context is cancelled, or the aggregator reports saturation/closure.
// A context cancellation abandons only this caller's receipt; the batch
// (and the counter advance) proceeds for everyone else.
func (a *Aggregator) Submit(ctx context.Context, req Request) (Receipt, error) {
	w := &waiter{req: req, ch: make(chan result, 1)}

	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return Receipt{}, ErrClosed
	}
	if a.queued >= a.cfg.MaxQueue {
		a.stats.saturated++
		a.mu.Unlock()
		return Receipt{}, ErrSaturated
	}
	a.queued++
	if len(a.pending) == 0 {
		a.opened = time.Now()
		gen := a.gen
		a.timer = time.AfterFunc(a.cfg.Window, func() { a.sealOnTimer(gen) })
	}
	if a.cfg.Dedup && req.Coalescable {
		if i, ok := a.index[leafKey{req.DocDigest, req.Tenant}]; ok {
			// Identical leaf already pending: ride it instead of widening
			// the tree. The leaf count is unchanged, so no close check.
			a.pending[i].waiters = append(a.pending[i].waiters, w)
			a.stats.dedup++
			a.mu.Unlock()
			return a.wait(ctx, w)
		}
	}
	a.pending = append(a.pending, &leafGroup{req: req, waiters: []*waiter{w}})
	if a.cfg.Dedup {
		if a.index == nil {
			a.index = make(map[leafKey]int)
		}
		a.index[leafKey{req.DocDigest, req.Tenant}] = len(a.pending) - 1
	}
	if len(a.pending) >= a.k {
		batch, opened := a.takeLocked()
		a.sealing++
		a.mu.Unlock()
		go a.seal(batch, opened, CloseFull)
	} else {
		a.mu.Unlock()
	}
	return a.wait(ctx, w)
}

func (a *Aggregator) wait(ctx context.Context, w *waiter) (Receipt, error) {
	select {
	case r := <-w.ch:
		return r.receipt, r.err
	case <-ctx.Done():
		return Receipt{}, ctx.Err()
	}
}

// takeLocked detaches the open batch (caller holds a.mu) and stops its
// window timer.
func (a *Aggregator) takeLocked() ([]*leafGroup, time.Time) {
	batch := a.pending
	opened := a.opened
	a.pending = nil
	a.index = nil
	a.gen++
	if a.timer != nil {
		a.timer.Stop()
		a.timer = nil
	}
	return batch, opened
}

// sealOnTimer seals the open batch when its window expires. gen guards
// against the race where the batch already sealed (full) and a new batch
// opened before the timer fired.
func (a *Aggregator) sealOnTimer(gen uint64) {
	a.mu.Lock()
	if a.gen != gen || len(a.pending) == 0 {
		a.mu.Unlock()
		return
	}
	// Sign-side group commit: a below-K batch whose window expired while
	// a sign is still in flight would only queue behind it at the pool —
	// keep it open instead, so late arrivals (and dedup riders) coalesce
	// into it, and seal it the moment the signer frees up. The re-armed
	// timer is the fallback if no seal completes.
	if a.sealing > 0 && len(a.pending) < a.k {
		a.timer = time.AfterFunc(a.cfg.Window, func() { a.sealOnTimer(gen) })
		a.mu.Unlock()
		return
	}
	batch, opened := a.takeLocked()
	a.sealing++
	a.mu.Unlock()
	a.seal(batch, opened, CloseWindow)
}

// seal builds the Merkle tree over one detached batch, performs the single
// enclave sign, and distributes receipts — every waiter of a coalesced
// leaf gets its own, sharing the leaf's index, path and nonce.
func (a *Aggregator) seal(batch []*leafGroup, opened time.Time, reason string) {
	fillDur := time.Since(opened)
	a.fill.Observe(fillDur)

	leaves := make([][8]uint32, len(batch))
	arrivals := 0
	for i, g := range batch {
		leaves[i] = LeafHash(g.req.DocDigest, g.req.Tenant, g.req.Nonce[:])
		arrivals += len(g.waiters)
	}
	root := Root(leaves)

	ctx, cancel := context.WithTimeout(context.Background(), a.cfg.SignTimeout)
	signed, err := a.cfg.Sign(ctx, root)
	cancel()

	a.mu.Lock()
	a.queued -= arrivals
	switch reason {
	case CloseFull:
		a.stats.batchesFull++
	case CloseWindow:
		a.stats.batchesWindow++
	default:
		a.stats.batchesDrain++
	}
	// Backlog means K was the binding constraint: the batch closed on
	// count and more work was already waiting behind it.
	backlog := reason == CloseFull && a.queued > 0
	a.retuneLocked(arrivals, fillDur, reason, backlog)
	if err != nil {
		a.stats.signFailures++
	} else {
		a.stats.signed += uint64(arrivals)
		a.stats.sizeSum += uint64(len(batch))
		a.stats.lastSize = len(batch)
		if len(batch) > a.stats.maxSize {
			a.stats.maxSize = len(batch)
		}
	}
	// Hand off a window-expired batch that was held open while this sign
	// was in flight (see sealOnTimer): the signer is free now.
	a.sealing--
	var deferred []*leafGroup
	var deferredOpened time.Time
	if a.sealing == 0 && !a.closed && len(a.pending) > 0 &&
		len(a.pending) < a.k && time.Since(a.opened) >= a.cfg.Window {
		deferred, deferredOpened = a.takeLocked()
		a.sealing++
	}
	a.mu.Unlock()
	if deferred != nil {
		go a.seal(deferred, deferredOpened, CloseWindow)
	}

	if err != nil {
		for _, g := range batch {
			for _, w := range g.waiters {
				w.ch <- result{err: err}
			}
		}
		return
	}
	for i, g := range batch {
		path := Path(leaves, i)
		for _, w := range g.waiters {
			w.ch <- result{receipt: Receipt{
				SignedRoot: signed,
				Leaf:       leaves[i],
				LeafIndex:  i,
				BatchSize:  len(batch),
				Path:       path,
				Nonce:      g.req.Nonce,
				Coalesced:  len(g.waiters),
			}}
		}
	}
}

// retuneLocked is the dynamic-K controller (caller holds a.mu). The EWMA
// of batch fill time and per-batch arrival count estimates the arrivals
// one window would collect at the smoothed rate; K then moves
// asymmetrically on that evidence, clamped to [MinBatch, MaxBatch]:
//
//   - A batch that closed on count with more work already queued behind
//     it grows K multiplicatively — the backlog proves K, not the
//     offered load, was the binding constraint (the rate estimate alone
//     equilibrates early under closed-loop load, where each seal wakes
//     exactly K clients and fill time tracks the window as K grows).
//   - Shrinking needs sustained evidence: one step down per three
//     consecutive window-closed seals that each caught under half of K.
//     Bursty arrivals leave occasional gap-straddling window closes
//     between full batches — near-full ones are healthy, and reacting
//     to every one would collapse K during every gap.
//   - Anything else (a full close that drained the queue, a drain close)
//     holds K.
func (a *Aggregator) retuneLocked(arrivals int, fillDur time.Duration, reason string, backlog bool) {
	if !a.adaptive {
		return
	}
	sec := fillDur.Seconds()
	if sec < 50e-6 {
		sec = 50e-6 // floor: a burst that fills instantly is not an infinite rate
	}
	const alpha = 0.3
	if a.ewmaFill == 0 {
		a.ewmaFill, a.ewmaCount = sec, float64(arrivals)
	} else {
		a.ewmaFill = alpha*sec + (1-alpha)*a.ewmaFill
		a.ewmaCount = alpha*float64(arrivals) + (1-alpha)*a.ewmaCount
	}
	rate := a.ewmaCount / a.ewmaFill // smoothed arrivals per second
	k := int(rate*a.cfg.Window.Seconds() + 0.5)
	switch {
	case backlog:
		a.windowRun = 0
		if grown := a.k + 1 + a.k/2; k < grown {
			k = grown
		}
	case reason == CloseWindow && arrivals*2 < a.k:
		a.windowRun++
		if a.windowRun >= 3 {
			a.windowRun = 0
			if floor := a.k - 1 - a.k/4; k < floor {
				k = floor
			}
		} else if k < a.k {
			k = a.k
		}
	default:
		a.windowRun = 0
		if k < a.k {
			k = a.k
		}
	}
	if k < a.cfg.MinBatch {
		k = a.cfg.MinBatch
	}
	if k > a.cfg.MaxBatch {
		k = a.cfg.MaxBatch
	}
	a.k = k
}

// Close drains the aggregator: the open batch (if any) seals immediately
// with reason "drain", and all later Submits fail with ErrClosed. It does
// not wait for in-flight seals.
func (a *Aggregator) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	if len(a.pending) == 0 {
		a.mu.Unlock()
		return
	}
	batch, opened := a.takeLocked()
	a.sealing++
	a.mu.Unlock()
	a.seal(batch, opened, CloseDrain)
}

// Pending reports requests admitted but not yet signed.
func (a *Aggregator) Pending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued
}

// MaxQueue reports the saturation limit Submit rejects beyond — the
// denominator for queue-pressure load shedding.
func (a *Aggregator) MaxQueue() int { return a.cfg.MaxQueue }

// Pressure reports the batcher's queue fullness for load shedding. With
// fixed sizing this is exactly (Pending, MaxQueue); with adaptive sizing
// the denominator tracks the live threshold (4×K, capped at MaxQueue),
// so admission control sheds relative to what the batcher is currently
// willing to buffer, not the static worst case.
func (a *Aggregator) Pressure() (int, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	capacity := a.cfg.MaxQueue
	if a.adaptive {
		if c := 4 * a.k; c < capacity {
			capacity = c
		}
	}
	return a.queued, capacity
}

// Stats snapshots the aggregator's counters.
func (a *Aggregator) Stats() Stats {
	a.mu.Lock()
	st := a.stats
	pending := a.queued
	k := a.k
	a.mu.Unlock()
	batches := st.batchesFull + st.batchesWindow + st.batchesDrain
	out := Stats{
		Batches:       batches,
		BatchesFull:   st.batchesFull,
		BatchesWindow: st.batchesWindow,
		BatchesDrain:  st.batchesDrain,
		Signed:        st.signed,
		SignFailures:  st.signFailures,
		Saturated:     st.saturated,
		SizeSum:       st.sizeSum,
		MaxSize:       st.maxSize,
		LastSize:      st.lastSize,
		Pending:       pending,
		KCurrent:      k,
		Dedup:         st.dedup,
	}
	if a.adaptive {
		out.KMin, out.KMax = a.cfg.MinBatch, a.cfg.MaxBatch
	}
	if signedBatches := batches - st.signFailures; st.signed > signedBatches {
		out.CrossingsSaved = st.signed - signedBatches
	}
	if batches > 0 {
		out.MeanSize = float64(st.sizeSum) / float64(batches)
	}
	snap := a.fill.Snapshot()
	out.FillP50us = float64(snap.Quantile(0.50)) / 1e3
	out.FillP95us = float64(snap.Quantile(0.95)) / 1e3
	return out
}

// FillHist exposes the fill-latency histogram for /metrics export.
func (a *Aggregator) FillHist() *obs.Histogram { return a.fill }
