package batch

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
)

// Errors returned by Submit.
var (
	// ErrClosed: the aggregator has been drained and accepts no new work.
	ErrClosed = errors.New("batch: aggregator closed")
	// ErrSaturated: too many requests are already queued or in flight;
	// the caller should shed (429 + Retry-After).
	ErrSaturated = errors.New("batch: queue saturated")
)

// Request is one queued sign request: the client's document digest plus
// the identity material bound into the leaf.
type Request struct {
	DocDigest [8]uint32 // SHA-256 of the raw document bytes
	Tenant    string
	Nonce     [NonceSize]byte
}

// SignedRoot is the enclave's signature over one sealed batch: the guest
// advanced the counter once and attested RootDigest(Root, Counter).
type SignedRoot struct {
	Root     [8]uint32
	Counter  uint32
	Digest   [8]uint32 // RootDigest(Root, Counter), recomputed Go-side
	MAC      [8]uint32
	Worker   int
	Epoch    int
	Restores int
}

// Receipt is what one client gets back: the shared batch signature plus
// this request's position proof.
type Receipt struct {
	SignedRoot
	Leaf      [8]uint32
	LeafIndex int
	BatchSize int
	Path      [][8]uint32
}

// SignFunc performs the single enclave entry for a sealed batch. It is
// called outside the aggregator lock, at most cfg.MaxConcurrent at a time
// implicitly (one per sealed batch; pool capacity bounds real concurrency).
type SignFunc func(ctx context.Context, root [8]uint32) (SignedRoot, error)

// Config parameterises an Aggregator.
type Config struct {
	// MaxBatch is K: a batch seals as soon as it holds K requests.
	MaxBatch int
	// Window is T: a non-empty batch seals at most this long after its
	// first request arrived, even if it is short of K.
	Window time.Duration
	// MaxQueue bounds requests admitted but not yet signed (across the
	// open batch and all in-flight seals). Submit returns ErrSaturated
	// beyond it. Defaults to 4*MaxBatch.
	MaxQueue int
	// SignTimeout bounds one enclave sign call (default 5s). Sealing uses
	// its own context so one client's cancellation cannot abort a batch
	// that other clients are waiting on.
	SignTimeout time.Duration
	// Sign performs the enclave entry.
	Sign SignFunc
}

// Close reasons for sealed batches.
const (
	CloseFull   = "full"
	CloseWindow = "window"
	CloseDrain  = "drain"
)

type waiter struct {
	req Request
	ch  chan result // buffered 1; exactly one send per waiter
}

type result struct {
	receipt Receipt
	err     error
}

// Aggregator collects sign requests into batches, seals each batch into a
// Merkle tree, obtains one enclave signature per batch, and distributes
// per-request receipts. Safe for concurrent use.
type Aggregator struct {
	cfg Config

	mu      sync.Mutex
	pending []*waiter   // current open batch
	opened  time.Time   // when pending[0] arrived
	timer   *time.Timer // window timer for the open batch
	gen     uint64      // open-batch generation, guards stale timers
	queued  int         // admitted but not yet signed (open + sealing)
	closed  bool

	stats statsInner
	fill  *obs.Histogram // first-enqueue → seal latency
}

type statsInner struct {
	batchesFull   uint64
	batchesWindow uint64
	batchesDrain  uint64
	signed        uint64 // receipts delivered across all batches
	signFailures  uint64
	saturated     uint64
	sizeSum       uint64
	maxSize       int
	lastSize      int
}

// Stats is the JSON-facing snapshot, mergeable across a fleet.
type Stats struct {
	Batches        uint64  `json:"batches"`
	BatchesFull    uint64  `json:"batches_full"`
	BatchesWindow  uint64  `json:"batches_window"`
	BatchesDrain   uint64  `json:"batches_drain"`
	Signed         uint64  `json:"signed_requests"`
	SignFailures   uint64  `json:"sign_failures"`
	Saturated      uint64  `json:"saturated"`
	CrossingsSaved uint64  `json:"crossings_saved"`
	SizeSum        uint64  `json:"size_sum"`
	MeanSize       float64 `json:"mean_size"`
	MaxSize        int     `json:"max_size"`
	LastSize       int     `json:"last_size"`
	Pending        int     `json:"pending"`
	FillP50us      float64 `json:"fill_p50_us"`
	FillP95us      float64 `json:"fill_p95_us"`
}

// Merge folds another snapshot into s (fleet-wide aggregation). Fill
// quantiles are not mergeable without the raw histograms; the max is kept.
func (s *Stats) Merge(o Stats) {
	s.Batches += o.Batches
	s.BatchesFull += o.BatchesFull
	s.BatchesWindow += o.BatchesWindow
	s.BatchesDrain += o.BatchesDrain
	s.Signed += o.Signed
	s.SignFailures += o.SignFailures
	s.Saturated += o.Saturated
	s.CrossingsSaved += o.CrossingsSaved
	s.SizeSum += o.SizeSum
	if s.Batches > 0 {
		s.MeanSize = float64(s.SizeSum) / float64(s.Batches)
	}
	if o.MaxSize > s.MaxSize {
		s.MaxSize = o.MaxSize
	}
	s.LastSize = o.LastSize
	s.Pending += o.Pending
	if o.FillP50us > s.FillP50us {
		s.FillP50us = o.FillP50us
	}
	if o.FillP95us > s.FillP95us {
		s.FillP95us = o.FillP95us
	}
}

// New builds an Aggregator. cfg.Sign is required; MaxBatch defaults to 16,
// Window to 2ms, MaxQueue to 4*MaxBatch, SignTimeout to 5s.
func New(cfg Config) *Aggregator {
	if cfg.Sign == nil {
		panic("batch: Config.Sign is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 16
	}
	if cfg.Window <= 0 {
		cfg.Window = 2 * time.Millisecond
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxBatch
	}
	if cfg.SignTimeout <= 0 {
		cfg.SignTimeout = 5 * time.Second
	}
	return &Aggregator{cfg: cfg, fill: obs.NewHistogram()}
}

// Submit queues one request and blocks until its receipt is ready, the
// context is cancelled, or the aggregator reports saturation/closure.
// A context cancellation abandons only this caller's receipt; the batch
// (and the counter advance) proceeds for everyone else.
func (a *Aggregator) Submit(ctx context.Context, req Request) (Receipt, error) {
	w := &waiter{req: req, ch: make(chan result, 1)}

	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return Receipt{}, ErrClosed
	}
	if a.queued >= a.cfg.MaxQueue {
		a.stats.saturated++
		a.mu.Unlock()
		return Receipt{}, ErrSaturated
	}
	a.queued++
	if len(a.pending) == 0 {
		a.opened = time.Now()
		gen := a.gen
		a.timer = time.AfterFunc(a.cfg.Window, func() { a.sealOnTimer(gen) })
	}
	a.pending = append(a.pending, w)
	if len(a.pending) >= a.cfg.MaxBatch {
		batch, opened := a.takeLocked()
		a.mu.Unlock()
		go a.seal(batch, opened, CloseFull)
	} else {
		a.mu.Unlock()
	}

	select {
	case r := <-w.ch:
		return r.receipt, r.err
	case <-ctx.Done():
		return Receipt{}, ctx.Err()
	}
}

// takeLocked detaches the open batch (caller holds a.mu) and stops its
// window timer.
func (a *Aggregator) takeLocked() ([]*waiter, time.Time) {
	batch := a.pending
	opened := a.opened
	a.pending = nil
	a.gen++
	if a.timer != nil {
		a.timer.Stop()
		a.timer = nil
	}
	return batch, opened
}

// sealOnTimer seals the open batch when its window expires. gen guards
// against the race where the batch already sealed (full) and a new batch
// opened before the timer fired.
func (a *Aggregator) sealOnTimer(gen uint64) {
	a.mu.Lock()
	if a.gen != gen || len(a.pending) == 0 {
		a.mu.Unlock()
		return
	}
	batch, opened := a.takeLocked()
	a.mu.Unlock()
	a.seal(batch, opened, CloseWindow)
}

// seal builds the Merkle tree over one detached batch, performs the single
// enclave sign, and distributes receipts.
func (a *Aggregator) seal(batch []*waiter, opened time.Time, reason string) {
	a.fill.Observe(time.Since(opened))

	leaves := make([][8]uint32, len(batch))
	for i, w := range batch {
		leaves[i] = LeafHash(w.req.DocDigest, w.req.Tenant, w.req.Nonce[:])
	}
	root := Root(leaves)

	ctx, cancel := context.WithTimeout(context.Background(), a.cfg.SignTimeout)
	signed, err := a.cfg.Sign(ctx, root)
	cancel()

	a.mu.Lock()
	a.queued -= len(batch)
	switch reason {
	case CloseFull:
		a.stats.batchesFull++
	case CloseWindow:
		a.stats.batchesWindow++
	default:
		a.stats.batchesDrain++
	}
	if err != nil {
		a.stats.signFailures++
	} else {
		a.stats.signed += uint64(len(batch))
		a.stats.sizeSum += uint64(len(batch))
		a.stats.lastSize = len(batch)
		if len(batch) > a.stats.maxSize {
			a.stats.maxSize = len(batch)
		}
	}
	a.mu.Unlock()

	if err != nil {
		for _, w := range batch {
			w.ch <- result{err: err}
		}
		return
	}
	for i, w := range batch {
		w.ch <- result{receipt: Receipt{
			SignedRoot: signed,
			Leaf:       leaves[i],
			LeafIndex:  i,
			BatchSize:  len(batch),
			Path:       Path(leaves, i),
		}}
	}
}

// Close drains the aggregator: the open batch (if any) seals immediately
// with reason "drain", and all later Submits fail with ErrClosed. It does
// not wait for in-flight seals.
func (a *Aggregator) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	if len(a.pending) == 0 {
		a.mu.Unlock()
		return
	}
	batch, opened := a.takeLocked()
	a.mu.Unlock()
	a.seal(batch, opened, CloseDrain)
}

// Pending reports requests admitted but not yet signed.
func (a *Aggregator) Pending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued
}

// MaxQueue reports the saturation limit Submit rejects beyond — the
// denominator for queue-pressure load shedding.
func (a *Aggregator) MaxQueue() int { return a.cfg.MaxQueue }

// Stats snapshots the aggregator's counters.
func (a *Aggregator) Stats() Stats {
	a.mu.Lock()
	st := a.stats
	pending := a.queued
	a.mu.Unlock()
	batches := st.batchesFull + st.batchesWindow + st.batchesDrain
	out := Stats{
		Batches:       batches,
		BatchesFull:   st.batchesFull,
		BatchesWindow: st.batchesWindow,
		BatchesDrain:  st.batchesDrain,
		Signed:        st.signed,
		SignFailures:  st.signFailures,
		Saturated:     st.saturated,
		SizeSum:       st.sizeSum,
		MaxSize:       st.maxSize,
		LastSize:      st.lastSize,
		Pending:       pending,
	}
	if signedBatches := batches - st.signFailures; st.signed > signedBatches {
		out.CrossingsSaved = st.signed - signedBatches
	}
	if batches > 0 {
		out.MeanSize = float64(st.sizeSum) / float64(batches)
	}
	snap := a.fill.Snapshot()
	out.FillP50us = float64(snap.Quantile(0.50)) / 1e3
	out.FillP95us = float64(snap.Quantile(0.95)) / 1e3
	return out
}

// FillHist exposes the fill-latency histogram for /metrics export.
func (a *Aggregator) FillHist() *obs.Histogram { return a.fill }
