package batch

import (
	"math/rand"
	"testing"

	"repro/internal/sha2"
)

// randLeaves builds n deterministic pseudo-random leaf hashes.
func randLeaves(rng *rand.Rand, n int) [][8]uint32 {
	leaves := make([][8]uint32, n)
	for i := range leaves {
		var b [40]byte
		rng.Read(b[:])
		h := sha2.New()
		h.Write([]byte{leafPrefix})
		h.Write(b[:])
		leaves[i] = h.SumWords()
	}
	return leaves
}

// TestInclusionAllSizes verifies every leaf of every tree size 1..64 against
// the tree root, and checks the single-leaf degenerate case.
func TestInclusionAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 64; n++ {
		leaves := randLeaves(rng, n)
		root := Root(leaves)
		for i := 0; i < n; i++ {
			path := Path(leaves, i)
			if !VerifyInclusion(leaves[i], i, n, path, root) {
				t.Fatalf("size %d: leaf %d failed inclusion", n, i)
			}
			// Wrong index with the right path must fail.
			if n > 1 && VerifyInclusion(leaves[i], (i+1)%n, n, path, root) {
				t.Fatalf("size %d: leaf %d verified at wrong index", n, i)
			}
		}
	}
}

// TestKnownStructure pins the RFC 6962 shape: for 3 leaves a,b,c the root
// is H(0x01 ‖ H(0x01‖a‖b) ‖ c).
func TestKnownStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := randLeaves(rng, 3)
	want := nodeHash(nodeHash(l[0], l[1]), l[2])
	if got := Root(l); got != want {
		t.Fatalf("3-leaf root mismatch: got %x want %x", got, want)
	}
	// Leaf 2's path is the single sibling H(0x01‖a‖b).
	p := Path(l, 2)
	if len(p) != 1 || p[0] != nodeHash(l[0], l[1]) {
		t.Fatalf("3-leaf path(2) wrong: %x", p)
	}
}

// TestLeafDomainSeparation: a leaf hash can never equal the node hash of
// the same bytes, and two requests differing only in tenant or nonce get
// different leaves.
func TestLeafDomainSeparation(t *testing.T) {
	doc := sha2.New().SumWords()
	n1 := make([]byte, NonceSize)
	n2 := make([]byte, NonceSize)
	n2[0] = 1
	a := LeafHash(doc, "alice", n1)
	if b := LeafHash(doc, "bob", n1); a == b {
		t.Fatal("tenant not bound into leaf")
	}
	if b := LeafHash(doc, "alice", n2); a == b {
		t.Fatal("nonce not bound into leaf")
	}
}

// TestRootDigestPadding: RootDigest must equal a straight SHA-256 over the
// 10-word message, which is what the guest computes with manual padding
// (bitlen = 320).
func TestRootDigestPadding(t *testing.T) {
	var root [8]uint32
	for i := range root {
		root[i] = uint32(0x1000 + i)
	}
	got := RootDigest(root, 7)
	h := sha2.New()
	h.WriteWords(append(append([]uint32{0x4b424154}, root[:]...), 7))
	if want := h.SumWords(); got != want {
		t.Fatalf("RootDigest mismatch: got %x want %x", got, want)
	}
}

// FuzzInclusionProof is the satellite fail-closed check: starting from a
// valid (leaf, index, size, path, root) tuple, any single tampering —
// flipped leaf bit, flipped path bit, dropped or duplicated path element,
// wrong index, wrong size, flipped root bit — must make VerifyInclusion
// return false.
func FuzzInclusionProof(f *testing.F) {
	f.Add(int64(1), 8, 3)
	f.Add(int64(2), 1, 0)
	f.Add(int64(3), 33, 32)
	f.Add(int64(4), 64, 63)
	f.Fuzz(func(t *testing.T, seed int64, size, index int) {
		if size < 1 || size > 256 {
			size = 1 + (abs(size) % 256)
		}
		if index < 0 || index >= size {
			index = abs(index) % size
		}
		rng := rand.New(rand.NewSource(seed))
		leaves := randLeaves(rng, size)
		// The probed leaf is a real request leaf — LeafHash over (doc,
		// tenant, nonce) — so nonce tampering can be checked the way a
		// coalesced receipt's verifier would: recompute and compare.
		doc := sha2.New().SumWords()
		doc[0] = uint32(seed)
		var nonce [NonceSize]byte
		rng.Read(nonce[:])
		leaves[index] = LeafHash(doc, "tenant", nonce[:])
		root := Root(leaves)
		path := Path(leaves, index)
		leaf := leaves[index]
		if !VerifyInclusion(leaf, index, size, path, root) {
			t.Fatalf("valid proof rejected (size=%d index=%d)", size, index)
		}

		// A coalesced receipt carries the shared leaf's nonce; a tampered
		// nonce recomputes to a different leaf, which must not prove. The
		// same holds for a swapped tenant.
		badNonce := nonce
		badNonce[rng.Intn(NonceSize)] ^= 1 << uint(rng.Intn(8))
		if got := LeafHash(doc, "tenant", badNonce[:]); got == leaf {
			t.Fatal("nonce tamper did not change the leaf")
		} else if VerifyInclusion(got, index, size, path, root) {
			t.Fatal("leaf recomputed from tampered nonce accepted")
		}
		if got := LeafHash(doc, "tenant2", nonce[:]); VerifyInclusion(got, index, size, path, root) {
			t.Fatal("leaf recomputed from tampered tenant accepted")
		}

		// Tampered leaf.
		badLeaf := leaf
		badLeaf[rng.Intn(8)] ^= 1 << uint(rng.Intn(32))
		if VerifyInclusion(badLeaf, index, size, path, root) {
			t.Fatal("tampered leaf accepted")
		}
		// Tampered root.
		badRoot := root
		badRoot[rng.Intn(8)] ^= 1 << uint(rng.Intn(32))
		if VerifyInclusion(leaf, index, size, path, badRoot) {
			t.Fatal("tampered root accepted")
		}
		// Tampered path element.
		if len(path) > 0 {
			bad := make([][8]uint32, len(path))
			copy(bad, path)
			j := rng.Intn(len(bad))
			bad[j][rng.Intn(8)] ^= 1 << uint(rng.Intn(32))
			if VerifyInclusion(leaf, index, size, bad, root) {
				t.Fatal("tampered path accepted")
			}
			// Truncated path.
			if VerifyInclusion(leaf, index, size, path[:len(path)-1], root) {
				t.Fatal("truncated path accepted")
			}
		}
		// Padded path.
		padded := append(append([][8]uint32{}, path...), leaf)
		if VerifyInclusion(leaf, index, size, padded, root) {
			t.Fatal("padded path accepted")
		}
		// Wrong index (proof replay at another position).
		if size > 1 {
			wrong := (index + 1 + rng.Intn(size-1)) % size
			if VerifyInclusion(leaf, wrong, size, path, root) {
				t.Fatal("proof accepted at wrong index")
			}
		}
		// Out-of-range index/size fail closed rather than panic.
		if VerifyInclusion(leaf, size, size, path, root) ||
			VerifyInclusion(leaf, -1, size, path, root) ||
			VerifyInclusion(leaf, 0, 0, path, root) {
			t.Fatal("out-of-range position accepted")
		}
	})
}

func abs(x int) int {
	if x < 0 {
		if x == -x { // math.MinInt
			return 1
		}
		return -x
	}
	return x
}
