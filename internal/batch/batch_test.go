package batch

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sha2"
)

// fakeSigner counts enclave entries and signs with a deterministic MAC so
// tests can verify receipts end-to-end without a real enclave.
type fakeSigner struct {
	mu      sync.Mutex
	counter uint32
	calls   uint32
	fail    atomic.Bool
}

func (f *fakeSigner) sign(_ context.Context, root [8]uint32) (SignedRoot, error) {
	if f.fail.Load() {
		return SignedRoot{}, errors.New("injected sign failure")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	f.counter++
	digest := RootDigest(root, f.counter)
	var mac [8]uint32
	for i := range mac {
		mac[i] = digest[i] ^ 0xdeadbeef
	}
	return SignedRoot{Root: root, Counter: f.counter, Digest: digest, MAC: mac}, nil
}

func req(i int, tenant string) Request {
	var r Request
	r.DocDigest = sha2.New().SumWords()
	r.DocDigest[0] = uint32(i)
	r.Tenant = tenant
	r.Nonce[0] = byte(i)
	r.Nonce[1] = byte(i >> 8)
	return r
}

// TestFullBatchOneCrossing: K concurrent submits produce exactly one sign
// call, one counter advance, and K verifying receipts with distinct leaf
// indices — the aggregator-level half of the duplicate-counter
// differential test.
func TestFullBatchOneCrossing(t *testing.T) {
	const K = 16
	fs := &fakeSigner{}
	a := New(Config{MaxBatch: K, Window: time.Hour, Sign: fs.sign})
	defer a.Close()

	var wg sync.WaitGroup
	receipts := make([]Receipt, K)
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			receipts[i], errs[i] = a.Submit(context.Background(), req(i, "t"))
		}(i)
	}
	wg.Wait()

	if fs.calls != 1 {
		t.Fatalf("K=%d submits made %d enclave entries, want 1", K, fs.calls)
	}
	seen := map[int]bool{}
	for i, r := range receipts {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		if r.Counter != 1 {
			t.Fatalf("receipt %d counter %d, want 1", i, r.Counter)
		}
		if r.BatchSize != K {
			t.Fatalf("receipt %d batch size %d, want %d", i, r.BatchSize, K)
		}
		if seen[r.LeafIndex] {
			t.Fatalf("leaf index %d handed out twice", r.LeafIndex)
		}
		seen[r.LeafIndex] = true
		if !VerifyInclusion(r.Leaf, r.LeafIndex, r.BatchSize, r.Path, r.Root) {
			t.Fatalf("receipt %d failed inclusion", i)
		}
		if r.Digest != RootDigest(r.Root, r.Counter) {
			t.Fatalf("receipt %d digest does not bind (root, counter)", i)
		}
	}
	st := a.Stats()
	if st.BatchesFull != 1 || st.Signed != K || st.CrossingsSaved != K-1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestWindowClose: a lone request seals when the window expires.
func TestWindowClose(t *testing.T) {
	fs := &fakeSigner{}
	a := New(Config{MaxBatch: 64, Window: 5 * time.Millisecond, Sign: fs.sign})
	defer a.Close()

	r, err := a.Submit(context.Background(), req(1, "t"))
	if err != nil {
		t.Fatal(err)
	}
	if r.BatchSize != 1 || r.LeafIndex != 0 {
		t.Fatalf("got batch size %d index %d", r.BatchSize, r.LeafIndex)
	}
	if r.Root != r.Leaf {
		t.Fatal("single-leaf root must equal the leaf")
	}
	if st := a.Stats(); st.BatchesWindow != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestSaturation: with the sign path blocked, MaxQueue admissions succeed
// and the next is rejected with ErrSaturated.
func TestSaturation(t *testing.T) {
	release := make(chan struct{})
	var entered sync.WaitGroup
	a := New(Config{MaxBatch: 2, Window: time.Hour, MaxQueue: 4,
		Sign: func(_ context.Context, root [8]uint32) (SignedRoot, error) {
			<-release
			return SignedRoot{Root: root, Counter: 1}, nil
		}})
	defer a.Close()

	// Fill two batches (4 requests): all block in seal/sign.
	for i := 0; i < 4; i++ {
		entered.Add(1)
		go func(i int) {
			entered.Done()
			a.Submit(context.Background(), req(i, "t")) //nolint:errcheck
		}(i)
	}
	entered.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for a.Pending() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: pending=%d", a.Pending())
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := a.Submit(context.Background(), req(99, "t")); !errors.Is(err, ErrSaturated) {
		t.Fatalf("want ErrSaturated, got %v", err)
	}
	close(release)
	if st := a.Stats(); st.Saturated != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestDrainClose: Close seals the open batch with reason drain and rejects
// later submits.
func TestDrainClose(t *testing.T) {
	fs := &fakeSigner{}
	a := New(Config{MaxBatch: 8, Window: time.Hour, Sign: fs.sign})

	done := make(chan Receipt, 1)
	go func() {
		r, err := a.Submit(context.Background(), req(1, "t"))
		if err != nil {
			t.Errorf("submit: %v", err)
		}
		done <- r
	}()
	deadline := time.Now().Add(2 * time.Second)
	for a.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	a.Close()
	r := <-done
	if !VerifyInclusion(r.Leaf, r.LeafIndex, r.BatchSize, r.Path, r.Root) {
		t.Fatal("drained receipt failed inclusion")
	}
	if st := a.Stats(); st.BatchesDrain != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if _, err := a.Submit(context.Background(), req(2, "t")); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed after drain, got %v", err)
	}
}

// TestSignFailurePropagates: a failed enclave entry fails every waiter in
// the batch, and the queue drains so later batches proceed.
func TestSignFailurePropagates(t *testing.T) {
	fs := &fakeSigner{}
	fs.fail.Store(true)
	a := New(Config{MaxBatch: 2, Window: time.Hour, Sign: fs.sign})
	defer a.Close()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = a.Submit(context.Background(), req(i, "t"))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("submit %d succeeded despite sign failure", i)
		}
	}
	fs.fail.Store(false)
	var wg2 sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg2.Add(1)
		go func(i int) {
			defer wg2.Done()
			if _, err := a.Submit(context.Background(), req(10+i, "t")); err != nil {
				t.Errorf("post-failure submit %d: %v", i, err)
			}
		}(i)
	}
	wg2.Wait()
	if st := a.Stats(); st.SignFailures != 1 || st.Pending != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestDedupCoalesces: with Dedup on, two coalescable submits of the same
// (doc, tenant) share one leaf — same index, leaf hash, and nonce — each
// with an inclusion proof that verifies, while a distinct doc and a
// pinned-nonce duplicate keep their own leaves.
func TestDedupCoalesces(t *testing.T) {
	fs := &fakeSigner{}
	a := New(Config{MaxBatch: 64, Window: 25 * time.Millisecond, Dedup: true, Sign: fs.sign})
	defer a.Close()

	same := req(1, "t")
	same.Coalescable = true
	dup := same // identical doc+tenant, different caller nonce
	dup.Nonce[5] = 0xaa
	other := req(2, "t")
	other.Coalescable = true
	pinned := req(1, "t") // same doc+tenant but a pinned nonce: own leaf
	pinned.Nonce[5] = 0xbb

	reqs := []Request{same, dup, other, pinned}
	receipts := make([]Receipt, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r Request) {
			defer wg.Done()
			receipts[i], errs[i] = a.Submit(context.Background(), r)
		}(i, r)
		// Order the arrivals so "same" owns the leaf "dup" folds onto.
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if receipts[0].BatchSize != 3 {
		t.Fatalf("batch has %d leaves, want 3 (one shared)", receipts[0].BatchSize)
	}
	if receipts[0].LeafIndex != receipts[1].LeafIndex ||
		receipts[0].Leaf != receipts[1].Leaf || receipts[0].Nonce != receipts[1].Nonce {
		t.Fatalf("coalesced receipts diverge: %+v vs %+v", receipts[0], receipts[1])
	}
	if receipts[0].Coalesced != 2 || receipts[1].Coalesced != 2 {
		t.Fatalf("coalesced counts %d/%d, want 2/2", receipts[0].Coalesced, receipts[1].Coalesced)
	}
	if receipts[2].LeafIndex == receipts[0].LeafIndex {
		t.Fatal("distinct doc landed on the shared leaf")
	}
	if receipts[3].LeafIndex == receipts[0].LeafIndex {
		t.Fatal("non-coalescable request folded onto another leaf")
	}
	if receipts[3].Nonce != pinned.Nonce {
		t.Fatal("pinned nonce not preserved in its receipt")
	}
	for i, r := range receipts {
		if !VerifyInclusion(r.Leaf, r.LeafIndex, r.BatchSize, r.Path, r.Root) {
			t.Fatalf("receipt %d failed inclusion", i)
		}
	}
	st := a.Stats()
	if st.Dedup != 1 || st.Signed != 4 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestAdaptiveKMoves: the controller grows K after a fast concurrent
// burst (high arrival rate) and shrinks it back toward the floor under
// slow one-at-a-time traffic.
func TestAdaptiveKMoves(t *testing.T) {
	const minK, maxK = 2, 32
	fs := &fakeSigner{}
	a := New(Config{MaxBatch: maxK, MinBatch: minK, Window: 2 * time.Millisecond, Sign: fs.sign})
	defer a.Close()

	if st := a.Stats(); st.KCurrent != minK || st.KMin != minK || st.KMax != maxK {
		t.Fatalf("initial stats: %+v", st)
	}
	// Burst: fill batches at the floor as fast as submits can race in.
	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		for i := 0; i < minK; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := a.Submit(context.Background(), req(round*10+i, "t")); err != nil {
					t.Errorf("burst submit: %v", err)
				}
			}(i)
		}
		wg.Wait()
	}
	grown := a.Stats().KCurrent
	if grown <= minK || grown > maxK {
		t.Fatalf("after burst K=%d, want in (%d,%d]", grown, minK, maxK)
	}
	// Slow singles: each seals by window timeout with one arrival.
	for i := 0; i < 10; i++ {
		if _, err := a.Submit(context.Background(), req(100+i, "t")); err != nil {
			t.Fatal(err)
		}
	}
	shrunk := a.Stats().KCurrent
	if shrunk >= grown || shrunk < minK {
		t.Fatalf("after slow traffic K=%d (was %d), want shrunk toward %d", shrunk, grown, minK)
	}
}

// TestFixedModeUnchanged pins the off-switch differential at the
// aggregator level: with MinBatch 0 and Dedup off, receipts carry the
// caller's own nonce, no coalescing, a constant K, and exactly the leaf
// set a pre-adaptive aggregator would build.
func TestFixedModeUnchanged(t *testing.T) {
	const K = 4
	fs := &fakeSigner{}
	a := New(Config{MaxBatch: K, Window: time.Hour, Sign: fs.sign})
	defer a.Close()

	reqs := make([]Request, K)
	for i := range reqs {
		reqs[i] = req(1, "t") // identical docs: still one leaf each
		reqs[i].Nonce[3] = byte(i)
		reqs[i].Coalescable = true // dedup is off, so this must be inert
	}
	receipts := make([]Receipt, K)
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			if receipts[i], err = a.Submit(context.Background(), reqs[i]); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	seen := map[int]bool{}
	for i, r := range receipts {
		if r.BatchSize != K || r.Coalesced != 1 {
			t.Fatalf("receipt %d: size=%d coalesced=%d, want %d/1", i, r.BatchSize, r.Coalesced, K)
		}
		if r.Nonce != reqs[i].Nonce {
			t.Fatalf("receipt %d nonce differs from the caller's", i)
		}
		if want := LeafHash(reqs[i].DocDigest, reqs[i].Tenant, reqs[i].Nonce[:]); r.Leaf != want {
			t.Fatalf("receipt %d leaf is not LeafHash(doc, tenant, nonce)", i)
		}
		if seen[r.LeafIndex] {
			t.Fatalf("leaf index %d handed out twice with dedup off", r.LeafIndex)
		}
		seen[r.LeafIndex] = true
	}
	st := a.Stats()
	if st.Dedup != 0 || st.KCurrent != K || st.KMin != 0 || st.KMax != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestAbandonedWaiterDoesNotBlockBatch: a caller whose context dies before
// the seal completes abandons only its own receipt.
func TestAbandonedWaiterDoesNotBlockBatch(t *testing.T) {
	fs := &fakeSigner{}
	a := New(Config{MaxBatch: 2, Window: time.Hour, Sign: fs.sign})
	defer a.Close()

	ctx, cancel := context.WithCancel(context.Background())
	abandoned := make(chan error, 1)
	go func() {
		_, err := a.Submit(ctx, req(1, "t"))
		abandoned <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for a.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-abandoned; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The second request fills the batch; it must still get a receipt.
	r, err := a.Submit(context.Background(), req(2, "t"))
	if err != nil {
		t.Fatal(err)
	}
	if r.BatchSize != 2 || !VerifyInclusion(r.Leaf, r.LeafIndex, 2, r.Path, r.Root) {
		t.Fatalf("surviving receipt broken: %+v", r)
	}
}
