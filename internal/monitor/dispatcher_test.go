package monitor_test

import (
	"testing"

	"repro/internal/board"
	"repro/internal/kapi"
	"repro/internal/kasm"
)

// Tests for the dispatcher extension (§9.2): enclave fault handlers and
// self-paging, all refinement-checked through the world helper.

func TestSelfPaging(t *testing.T) {
	w := newWorld(t, board.Config{})
	enc := w.build(t, kasm.SelfPager())
	e, v, err := w.os.Enter(enc, uint32(enc.Spares[0]))
	if err != nil {
		t.Fatal(err)
	}
	// The fault was serviced inside the enclave: the OS sees a normal
	// exit, never a fault.
	if e != kapi.ErrSuccess {
		t.Fatalf("self-pager: (%v, %#x), want success", e, v)
	}
	if v != 0xabcd {
		t.Fatalf("value through self-paged mapping = %#x", v)
	}
}

func TestHandlerReceivesExceptionType(t *testing.T) {
	w := newWorld(t, board.Config{})
	enc := w.build(t, kasm.HandlerCounts())
	e, v, err := w.os.Enter(enc)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrSuccess {
		t.Fatalf("(%v, %d)", e, v)
	}
	if v != kapi.ExitUndef {
		t.Fatalf("handler saw exception type %d, want %d", v, kapi.ExitUndef)
	}
}

func TestDoubleFaultIsTerminal(t *testing.T) {
	w := newWorld(t, board.Config{})
	enc := w.build(t, kasm.DoubleFaulter())
	e, v, err := w.os.Enter(enc)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrFault || v != kapi.ExitUndef {
		t.Fatalf("double fault: (%v, %d), want (fault, undef)", e, v)
	}
	// The thread is re-enterable after the terminal fault.
	e, _, err = w.os.Enter(enc)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrFault {
		t.Fatalf("re-enter: %v", e)
	}
}

func TestStrayFaultReturnRejected(t *testing.T) {
	w := newWorld(t, board.Config{})
	enc := w.build(t, kasm.StrayFaultReturn())
	e, v, err := w.os.Enter(enc)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrSuccess {
		t.Fatalf("(%v, %d)", e, v)
	}
	if v != uint32(kapi.ErrInvalidArg) {
		t.Fatalf("stray FaultReturn returned %d, want ErrInvalidArg", v)
	}
}

func TestHandlerAfterInterruptResume(t *testing.T) {
	// Fault handling composes with suspend/resume: interrupt the
	// self-pager mid-run, resume it, and the handled fault still works.
	w := newWorld(t, board.Config{})
	enc := w.build(t, kasm.SelfPager())
	w.plat.Machine.ScheduleIRQ(5) // inside the prologue
	e, v, err := w.os.Enter(enc, uint32(enc.Spares[0]))
	if err != nil {
		t.Fatal(err)
	}
	if e == kapi.ErrInterrupted {
		e, v, err = w.os.Resume(enc)
		if err != nil {
			t.Fatal(err)
		}
	}
	if e != kapi.ErrSuccess || v != 0xabcd {
		t.Fatalf("after interrupt+resume: (%v, %#x)", e, v)
	}
}

func TestFaultHandledInvisibleToOS(t *testing.T) {
	// The whole point of the dispatcher (§9.2): the OS cannot observe
	// handled faults. A self-paging run and a plain run return the same
	// kind of result — success with a value — and nothing in the SMC
	// result distinguishes "faulted and self-repaired" from "ran clean".
	w := newWorld(t, board.Config{})
	pager := w.build(t, kasm.SelfPager())
	clean := w.build(t, kasm.StoreLoad())

	e1, _, err := w.os.Enter(pager, uint32(pager.Spares[0]))
	if err != nil {
		t.Fatal(err)
	}
	e2, _, err := w.os.Enter(clean)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatalf("fault handling visible in result codes: %v vs %v", e1, e2)
	}
}
