package monitor_test

import (
	"testing"

	"repro/internal/board"
	"repro/internal/kapi"
	"repro/internal/mem"
	"repro/internal/sha2"
)

// TestMeasurementAlgorithmGolden pins the measurement algorithm by
// recomputing it independently from the construction parameters: the
// measurement is SHA-256 over the sequence (for each thread: the
// InitThread tag and entry point; for each secure page: the MapSecure tag,
// the mapping word, and the 1024 content words), finalised at Finalise
// (§4: "(i) the enclave virtual address, permissions and initial contents
// of each secure page; and (ii) the entry point of every thread").
//
// This is a cross-check beyond refinement (which compares monitor and
// spec, both built here): it re-derives the transcript by hand, so an
// accidental change to the algorithm breaks this test even if monitor and
// spec change together.
func TestMeasurementAlgorithmGolden(t *testing.T) {
	w := newWorld(t, board.Config{})

	// A hand-built enclave: one code page at VA 0 (x), one data page at
	// VA 0x1000 (rw), entry 0.
	code := make([]uint32, mem.PageWords)
	code[0] = 0xAAA0_0001
	code[1] = 0xBBB0_0002
	data := make([]uint32, mem.PageWords)
	data[7] = 0x7777

	asPg, _ := w.os.AllocPage()
	l1Pg, _ := w.os.AllocPage()
	mustSMC(t, w, kapi.SMCInitAddrspace, uint32(asPg), uint32(l1Pg))
	l2Pg, _ := w.os.AllocPage()
	mustSMC(t, w, kapi.SMCInitL2PTable, uint32(asPg), uint32(l2Pg), 0)

	stage1, _ := w.os.AllocInsecurePage()
	w.os.WriteInsecure(stage1, code)
	codePg, _ := w.os.AllocPage()
	mCode := kapi.NewMapping(0, false, true)
	mustSMC(t, w, kapi.SMCMapSecure, uint32(asPg), uint32(codePg), uint32(mCode), stage1)

	stage2, _ := w.os.AllocInsecurePage()
	w.os.WriteInsecure(stage2, data)
	dataPg, _ := w.os.AllocPage()
	mData := kapi.NewMapping(0x1000, true, false)
	mustSMC(t, w, kapi.SMCMapSecure, uint32(asPg), uint32(dataPg), uint32(mData), stage2)

	thrPg, _ := w.os.AllocPage()
	const entry = 0x0
	mustSMC(t, w, kapi.SMCInitThread, uint32(asPg), uint32(thrPg), entry)
	mustSMC(t, w, kapi.SMCFinalise, uint32(asPg))

	db, err := w.plat.Monitor.DecodePageDB()
	if err != nil {
		t.Fatal(err)
	}
	got := db.Addrspace(asPg).Measured

	// Independent recomputation of the transcript.
	h := sha2.New()
	h.WriteWords([]uint32{kapi.SMCMapSecure, uint32(mCode)})
	h.WriteWords(code)
	h.WriteWords([]uint32{kapi.SMCMapSecure, uint32(mData)})
	h.WriteWords(data)
	h.WriteWords([]uint32{kapi.SMCInitThread, entry})
	want := h.SumWords()

	if got != want {
		t.Fatalf("measurement = %08x…, independent transcript = %08x…", got[0], want[0])
	}
}

func mustSMC(t *testing.T, w *world, call uint32, args ...uint32) {
	t.Helper()
	e, _, err := w.chk.SMC(call, args...)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrSuccess {
		t.Fatalf("SMC %d: %v", call, e)
	}
}

// TestMeasurementOrderSensitivity: the transcript is a sequence — mapping
// the same pages in a different order yields a different measurement
// ("any change in an enclave's layout will be reflected in the hash", §4).
func TestMeasurementOrderSensitivity(t *testing.T) {
	build := func(firstDataThenCode bool) [8]uint32 {
		w := newWorld(t, board.Config{})
		asPg, _ := w.os.AllocPage()
		l1Pg, _ := w.os.AllocPage()
		mustSMC(t, w, kapi.SMCInitAddrspace, uint32(asPg), uint32(l1Pg))
		l2Pg, _ := w.os.AllocPage()
		mustSMC(t, w, kapi.SMCInitL2PTable, uint32(asPg), uint32(l2Pg), 0)
		stage, _ := w.os.AllocInsecurePage()
		w.os.WriteInsecure(stage, []uint32{0x42})
		mapOne := func(va uint32) {
			pg, _ := w.os.AllocPage()
			mustSMC(t, w, kapi.SMCMapSecure, uint32(asPg), uint32(pg), uint32(kapi.NewMapping(va, true, false)), stage)
		}
		if firstDataThenCode {
			mapOne(0x1000)
			mapOne(0x2000)
		} else {
			mapOne(0x2000)
			mapOne(0x1000)
		}
		thrPg, _ := w.os.AllocPage()
		mustSMC(t, w, kapi.SMCInitThread, uint32(asPg), uint32(thrPg), 0x1000)
		mustSMC(t, w, kapi.SMCFinalise, uint32(asPg))
		db, err := w.plat.Monitor.DecodePageDB()
		if err != nil {
			t.Fatal(err)
		}
		return db.Addrspace(asPg).Measured
	}
	if build(true) == build(false) {
		t.Fatal("mapping order not reflected in the measurement")
	}
}
