package monitor_test

import (
	"testing"

	"repro/internal/arm"
	"repro/internal/asm"
	"repro/internal/board"
	"repro/internal/kapi"
	"repro/internal/kasm"
	"repro/internal/nwos"
)

// Multi-threaded enclaves: "An enclave consists of an address space with
// at least one thread" (§4) — and may have many, each with its own
// context and suspend state, all sharing the address space.

// counterGuest: thread 0 ("writer", entry 0) adds arg1 to the shared
// counter at DataVA and exits with the new value; thread 1 ("reader",
// entry at `reader`) exits with the current counter value.
func counterGuest(t *testing.T) (nwos.Image, uint32) {
	t.Helper()
	p := asm.New()
	// writer (entry 0): counter += arg1
	p.MovImm32(arm.R6, kasm.DataVA).
		Ldr(arm.R7, arm.R6, 0).
		Add(arm.R7, arm.R7, arm.R0).
		Str(arm.R7, arm.R6, 0).
		Mov(arm.R1, arm.R7)
	p.Movw(arm.R0, kapi.SVCExit)
	p.Svc()
	p.Label("reader")
	p.MovImm32(arm.R6, kasm.DataVA).
		Ldr(arm.R1, arm.R6, 0)
	p.Movw(arm.R0, kapi.SVCExit)
	p.Svc()
	readerEntry, err := p.LabelAddr(kasm.CodeVA, "reader")
	if err != nil {
		t.Fatal(err)
	}
	g := kasm.Guest{Prog: p}
	img, err := g.Image()
	if err != nil {
		t.Fatal(err)
	}
	img.ExtraThreads = []uint32{readerEntry}
	return img, readerEntry
}

func TestMultiThreadSharedAddressSpace(t *testing.T) {
	w := newWorld(t, board.Config{})
	img, _ := counterGuest(t)
	enc, err := w.os.BuildEnclave(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc.Threads) != 2 {
		t.Fatalf("threads = %d", len(enc.Threads))
	}
	// Writer thread bumps the counter twice.
	if e, v, err := w.os.EnterThread(enc, 0, 10); err != nil || e != kapi.ErrSuccess || v != 10 {
		t.Fatalf("writer 1: %v %v %d", err, e, v)
	}
	if e, v, err := w.os.EnterThread(enc, 0, 5); err != nil || e != kapi.ErrSuccess || v != 15 {
		t.Fatalf("writer 2: %v %v %d", err, e, v)
	}
	// Reader thread sees the shared state: one address space.
	if e, v, err := w.os.EnterThread(enc, 1); err != nil || e != kapi.ErrSuccess || v != 15 {
		t.Fatalf("reader: %v %v %d", err, e, v)
	}
}

func TestMultiThreadIndependentSuspendState(t *testing.T) {
	w := newWorld(t, board.Config{})
	g := kasm.CountTo()
	img, err := g.Image()
	if err != nil {
		t.Fatal(err)
	}
	img.ExtraThreads = []uint32{0} // second thread, same entry
	enc, err := w.os.BuildEnclave(img)
	if err != nil {
		t.Fatal(err)
	}
	// Suspend thread 0 mid-run.
	w.plat.Machine.ScheduleIRQ(1000)
	if e, _, err := w.os.EnterThread(enc, 0, 1_000_000); err != nil || e != kapi.ErrInterrupted {
		t.Fatal(err, e)
	}
	// Thread 1 is unaffected: it can run to completion while thread 0
	// stays suspended.
	if e, v, err := w.os.EnterThread(enc, 1, 500); err != nil || e != kapi.ErrSuccess || v != 500 {
		t.Fatalf("thread 1 while 0 suspended: %v %v %d", err, e, v)
	}
	// Thread 0 cannot be re-entered, only resumed; thread 1 the reverse.
	if e, _, _ := w.os.EnterThread(enc, 0); e != kapi.ErrAlreadyEntered {
		t.Fatalf("re-enter suspended: %v", e)
	}
	if e, _, _ := w.os.ResumeThread(enc, 1); e != kapi.ErrNotEntered {
		t.Fatalf("resume completed: %v", e)
	}
	if e, v, err := w.os.ResumeThread(enc, 0); err != nil || e != kapi.ErrSuccess || v != 1_000_000 {
		t.Fatalf("resume thread 0: %v %v %d", err, e, v)
	}
}

func TestMultiThreadMeasurementIncludesAll(t *testing.T) {
	// Every thread's entry point is measured (§4: "the entry point of
	// every thread"): one vs. two threads → different measurements.
	build := func(extra []uint32) [8]uint32 {
		w := newWorld(t, board.Config{})
		img, err := kasm.ExitConst(1).Image()
		if err != nil {
			t.Fatal(err)
		}
		img.ExtraThreads = extra
		enc, err := w.os.BuildEnclave(img)
		if err != nil {
			t.Fatal(err)
		}
		db, err := w.plat.Monitor.DecodePageDB()
		if err != nil {
			t.Fatal(err)
		}
		return db.Addrspace(enc.AS).Measured
	}
	if build(nil) == build([]uint32{0x40}) {
		t.Fatal("extra thread not reflected in measurement")
	}
}

// TestEnclaveToEnclaveSharedMemory: two enclaves share one insecure page
// (§4: insecure mappings "facilitate untrusted communication channels with
// the OS or between enclaves").
func TestEnclaveToEnclaveSharedMemory(t *testing.T) {
	w := newWorld(t, board.Config{})
	// Producer writes shared[1] = shared[0] + arg.
	producer := w.build(t, kasm.SharedEcho())
	// Consumer with the SAME physical page mapped.
	g := kasm.SharedEcho()
	g.SharedPA = producer.SharedPA[0]
	consumer := w.build(t, g)

	if err := w.os.WriteInsecure(producer.SharedPA[0], []uint32{100}); err != nil {
		t.Fatal(err)
	}
	// Producer: shared[1] = 100 + 11 = 111.
	if e, v, err := w.os.Enter(producer, 11); err != nil || e != kapi.ErrSuccess || v != 111 {
		t.Fatalf("producer: %v %v %d", err, e, v)
	}
	// Move the produced value into shared[0] (the OS shuttles data in the
	// untrusted channel), then the consumer reads it through ITS mapping
	// of the same physical page.
	out, _ := w.os.ReadInsecure(producer.SharedPA[0]+4, 1)
	w.os.WriteInsecure(consumer.SharedPA[0], out)
	if e, v, err := w.os.Enter(consumer, 1000); err != nil || e != kapi.ErrSuccess || v != 1111 {
		t.Fatalf("consumer: %v %v %d", err, e, v)
	}
	if consumer.SharedPA[0] != producer.SharedPA[0] {
		t.Fatal("enclaves not sharing one physical page")
	}
}
