package monitor_test

import (
	"testing"

	"repro/internal/arm"
	"repro/internal/board"
	"repro/internal/kapi"
	"repro/internal/kasm"
	"repro/internal/mem"
	"repro/internal/monitor"
	"repro/internal/nwos"
	"repro/internal/pagedb"
	"repro/internal/refine"
	"repro/internal/spec"
)

// world boots a platform and wires the OS model through the refinement
// checker, so every SMC in these tests is also checked against the spec.
type world struct {
	plat *board.Platform
	chk  *refine.Checker
	os   *nwos.OS
}

func newWorld(t *testing.T, cfg board.Config) *world {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	plat, err := board.Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	chk := refine.New(plat.Monitor)
	return &world{
		plat: plat,
		chk:  chk,
		os:   nwos.New(plat.Machine, chk, plat.Monitor.NPages()),
	}
}

func (w *world) build(t *testing.T, g kasm.Guest) *nwos.Enclave {
	t.Helper()
	img, err := g.Image()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := w.os.BuildEnclave(img)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestGetPhysPages(t *testing.T) {
	w := newWorld(t, board.Config{})
	e, v, err := w.chk.SMC(kapi.SMCGetPhysPages)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrSuccess {
		t.Fatalf("err = %v", e)
	}
	// 1 MB secure region = 256 pages, minus 2 reserved for the monitor.
	if v != 254 {
		t.Fatalf("GetPhysPages = %d, want 254", v)
	}
}

func TestEnclaveExitConst(t *testing.T) {
	w := newWorld(t, board.Config{})
	enc := w.build(t, kasm.ExitConst(42))
	e, v, err := w.os.Enter(enc)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrSuccess || v != 42 {
		t.Fatalf("Enter = (%v, %d), want (success, 42)", e, v)
	}
}

func TestEnclaveArguments(t *testing.T) {
	w := newWorld(t, board.Config{})
	enc := w.build(t, kasm.AddArgs())
	e, v, err := w.os.Enter(enc, 1000, 337)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrSuccess || v != 1337 {
		t.Fatalf("Enter = (%v, %d), want (success, 1337)", e, v)
	}
}

func TestEnclaveDataPage(t *testing.T) {
	w := newWorld(t, board.Config{})
	enc := w.build(t, kasm.StoreLoad())
	e, v, err := w.os.Enter(enc)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrSuccess || v != 0xbeef {
		t.Fatalf("Enter = (%v, %#x)", e, v)
	}
}

func TestEnclaveReentry(t *testing.T) {
	// After Exit, the thread may be re-entered (§4).
	w := newWorld(t, board.Config{})
	enc := w.build(t, kasm.AddArgs())
	for i := uint32(0); i < 5; i++ {
		e, v, err := w.os.Enter(enc, i, 10)
		if err != nil {
			t.Fatal(err)
		}
		if e != kapi.ErrSuccess || v != i+10 {
			t.Fatalf("iteration %d: (%v, %d)", i, e, v)
		}
	}
}

func TestInterruptSuspendResume(t *testing.T) {
	w := newWorld(t, board.Config{})
	enc := w.build(t, kasm.CountTo())
	const target = 40_000
	w.plat.Machine.ScheduleIRQ(10_000) // interrupt mid-loop
	e, v, err := w.os.Enter(enc, target)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrInterrupted {
		t.Fatalf("Enter = (%v, %d), want interrupted", e, v)
	}
	// Declassification: the OS learns only the exception type.
	if v != kapi.ExitIRQ {
		t.Fatalf("interrupt leaked value %#x", v)
	}
	// The suspended thread may not be re-entered...
	e, _, err = w.os.Enter(enc, target)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrAlreadyEntered {
		t.Fatalf("re-enter suspended thread: %v", e)
	}
	// ...but resumes to completion.
	e, v, err = w.os.Resume(enc)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrSuccess || v != target {
		t.Fatalf("Resume = (%v, %d), want (success, %d)", e, v, target)
	}
	// Resume of a non-suspended thread fails.
	e, _, err = w.os.Resume(enc)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrNotEntered {
		t.Fatalf("resume completed thread: %v", e)
	}
}

func TestMultipleInterruptsAcrossResume(t *testing.T) {
	w := newWorld(t, board.Config{})
	enc := w.build(t, kasm.CountTo())
	const target = 100_000
	w.plat.Machine.ScheduleIRQ(7_000)
	e, v, err := w.os.Enter(enc, target)
	if err != nil {
		t.Fatal(err)
	}
	interrupts := 0
	for e == kapi.ErrInterrupted {
		interrupts++
		if interrupts > 100 {
			t.Fatal("livelock")
		}
		w.plat.Machine.ScheduleIRQ(7_000)
		e, v, err = w.os.Resume(enc)
		if err != nil {
			t.Fatal(err)
		}
	}
	if e != kapi.ErrSuccess || v != target {
		t.Fatalf("final = (%v, %d) after %d interrupts", e, v, interrupts)
	}
	if interrupts < 2 {
		t.Fatalf("expected multiple suspensions, got %d", interrupts)
	}
}

func TestEnclaveFaults(t *testing.T) {
	cases := []struct {
		name string
		kind kasm.FaultKind
		exit uint32
	}{
		{"write-ro", kasm.FaultWriteRO, kapi.ExitDataAbort},
		{"unmapped", kasm.FaultUnmapped, kapi.ExitDataAbort},
		{"exec-nx", kasm.FaultExecNX, kapi.ExitPrefAbort},
		{"hlt", kasm.FaultUndefInsn, kapi.ExitUndef},
		{"privileged", kasm.FaultPrivileged, kapi.ExitUndef},
		{"beyond-va", kasm.FaultBeyondVA, kapi.ExitDataAbort},
		{"smc", kasm.FaultSMC, kapi.ExitUndef},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := newWorld(t, board.Config{})
			enc := w.build(t, kasm.Faulter(c.kind))
			e, v, err := w.os.Enter(enc)
			if err != nil {
				t.Fatal(err)
			}
			if e != kapi.ErrFault {
				t.Fatalf("Enter = (%v, %d), want fault", e, v)
			}
			// Only the exception type is released — never the secret in
			// R7, never a fault address.
			if v != c.exit {
				t.Fatalf("fault leaked %#x, want exit type %d", v, c.exit)
			}
			// The faulted thread is re-enterable.
			e, _, err = w.os.Enter(enc)
			if err != nil {
				t.Fatal(err)
			}
			if e != kapi.ErrFault {
				t.Fatalf("re-enter after fault: %v", e)
			}
		})
	}
}

func TestFaultDoesNotLeakRegisters(t *testing.T) {
	// The OS's register view after a faulting enclave must contain
	// nothing of the enclave's state (the secret 0x5ec2e7 was in R7).
	w := newWorld(t, board.Config{})
	m := w.plat.Machine
	for i := 4; i <= 11; i++ {
		m.SetReg(arm.Reg(i), 0x05aa0000+uint32(i))
	}
	enc := w.build(t, kasm.Faulter(kasm.FaultWriteRO))
	// Reset marker registers right before entry (BuildEnclave clobbered
	// volatiles through its own SMCs, but non-volatiles survive).
	for i := 5; i <= 11; i++ {
		m.SetReg(arm.Reg(i), 0x05aa0000+uint32(i))
	}
	if _, _, err := w.os.Enter(enc); err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 12; i++ {
		got := m.Reg(arm.Reg(i))
		if got == 0x5ec2e7 {
			t.Fatalf("enclave secret leaked in R%d", i)
		}
		if i >= 5 && i <= 11 && got != 0x05aa0000+uint32(i) {
			t.Fatalf("non-volatile R%d not preserved: %#x", i, got)
		}
	}
}

func TestSMCRegisterDiscipline(t *testing.T) {
	// §5.2: "non-volatile registers are preserved, other non-return
	// registers are zeroed".
	w := newWorld(t, board.Config{})
	m := w.plat.Machine
	for i := 2; i <= 12; i++ {
		m.SetReg(arm.Reg(i), 0x11110000+uint32(i))
	}
	e, _, err := w.chk.SMC(kapi.SMCGetPhysPages)
	if err != nil || e != kapi.ErrSuccess {
		t.Fatal(err, e)
	}
	for _, r := range []arm.Reg{arm.R2, arm.R3, arm.R4, arm.R12} {
		if m.Reg(r) != 0 {
			t.Fatalf("volatile register %v not zeroed: %#x", r, m.Reg(r))
		}
	}
	for i := 5; i <= 11; i++ {
		if m.Reg(arm.Reg(i)) != 0x11110000+uint32(i) {
			t.Fatalf("non-volatile R%d clobbered: %#x", i, m.Reg(arm.Reg(i)))
		}
	}
}

func TestGetRandomSVC(t *testing.T) {
	w := newWorld(t, board.Config{Seed: 99})
	enc := w.build(t, kasm.GetRandom())
	e, v1, err := w.os.Enter(enc)
	if err != nil || e != kapi.ErrSuccess {
		t.Fatal(err, e)
	}
	e, v2, err := w.os.Enter(enc)
	if err != nil || e != kapi.ErrSuccess {
		t.Fatal(err, e)
	}
	if v1 == v2 {
		t.Fatalf("consecutive GetRandom returned identical words %#x", v1)
	}
}

func TestAttestVerifyBetweenEnclaves(t *testing.T) {
	w := newWorld(t, board.Config{})

	// Enclave A attests and writes the MAC to its shared page.
	attestor := w.build(t, kasm.AttestToShared())
	e, v, err := w.os.Enter(attestor)
	if err != nil || e != kapi.ErrSuccess || v != 1 {
		t.Fatalf("attestor: %v %v %d", err, e, v)
	}
	mac, err := w.os.ReadInsecure(attestor.SharedPA[0], 8)
	if err != nil {
		t.Fatal(err)
	}

	// The OS knows the attestor's measurement (it can recompute it from
	// the image; here we read it from the decoded PageDB, which contains
	// nothing secret — measurements are public by design).
	db, err := w.plat.Monitor.DecodePageDB()
	if err != nil {
		t.Fatal(err)
	}
	measured := db.Addrspace(attestor.AS).Measured

	// Enclave B verifies (data, measurement, mac) from its shared page.
	verifier := w.build(t, kasm.VerifyFromShared())
	payload := make([]uint32, 24)
	for i := 0; i < 8; i++ {
		payload[i] = uint32(i + 1) // the data words AttestToShared used
		payload[8+i] = measured[i]
		payload[16+i] = mac[i]
	}
	if err := w.os.WriteInsecure(verifier.SharedPA[0], payload); err != nil {
		t.Fatal(err)
	}
	e, v, err = w.os.Enter(verifier)
	if err != nil || e != kapi.ErrSuccess {
		t.Fatal(err, e)
	}
	if v != 1 {
		t.Fatal("valid attestation rejected by verifier enclave")
	}

	// A forged MAC must be rejected.
	payload[16] ^= 1
	if err := w.os.WriteInsecure(verifier.SharedPA[0], payload); err != nil {
		t.Fatal(err)
	}
	e, v, err = w.os.Enter(verifier)
	if err != nil || e != kapi.ErrSuccess {
		t.Fatal(err, e)
	}
	if v != 0 {
		t.Fatal("forged attestation accepted")
	}
}

func TestDynamicAllocation(t *testing.T) {
	w := newWorld(t, board.Config{})
	enc := w.build(t, kasm.DynAlloc())
	e, v, err := w.os.Enter(enc, uint32(enc.Spares[0]))
	if err != nil || e != kapi.ErrSuccess {
		t.Fatal(err, e)
	}
	if v != 0xfeed {
		t.Fatalf("dynamic page round trip = %#x", v)
	}
	// The spare is now a data page: the OS's Remove must fail — the §6.2
	// declassified side channel.
	e, _, err = w.chk.SMC(kapi.SMCRemove, uint32(enc.Spares[0]))
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrNotStopped {
		t.Fatalf("Remove of consumed spare: %v, want not-stopped", e)
	}
}

func TestDynamicUnmapFaultsAfterUnmap(t *testing.T) {
	w := newWorld(t, board.Config{})
	enc := w.build(t, kasm.DynUnmap())
	e, v, err := w.os.Enter(enc, uint32(enc.Spares[0]))
	if err != nil {
		t.Fatal(err)
	}
	// The guest's final load of the unmapped VA must data-abort, which
	// also proves the monitor flushed the TLB after UnmapData.
	if e != kapi.ErrFault || v != kapi.ExitDataAbort {
		t.Fatalf("after unmap: (%v, %d), want (fault, data-abort)", e, v)
	}
	// And the spare page is reclaimable by the OS again.
	e, _, err = w.chk.SMC(kapi.SMCRemove, uint32(enc.Spares[0]))
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrSuccess {
		t.Fatalf("Remove of freed spare: %v", e)
	}
}

func TestSharedMemoryEcho(t *testing.T) {
	w := newWorld(t, board.Config{})
	enc := w.build(t, kasm.SharedEcho())
	if err := w.os.WriteInsecure(enc.SharedPA[0], []uint32{100}); err != nil {
		t.Fatal(err)
	}
	e, v, err := w.os.Enter(enc, 23)
	if err != nil || e != kapi.ErrSuccess {
		t.Fatal(err, e)
	}
	if v != 123 {
		t.Fatalf("echo = %d", v)
	}
	out, err := w.os.ReadInsecure(enc.SharedPA[0]+4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 123 {
		t.Fatalf("shared word = %d", out[0])
	}
}

func TestEnterValidationErrors(t *testing.T) {
	w := newWorld(t, board.Config{})
	// Thread of a non-finalised enclave.
	img, _ := kasm.ExitConst(1).Image()
	img2 := img
	img2.Spares = 0
	// Build manually without finalising.
	asPg, _ := w.os.AllocPage()
	l1Pg, _ := w.os.AllocPage()
	if _, _, err := w.chk.SMC(kapi.SMCInitAddrspace, uint32(asPg), uint32(l1Pg)); err != nil {
		t.Fatal(err)
	}
	thrPg, _ := w.os.AllocPage()
	if _, _, err := w.chk.SMC(kapi.SMCInitThread, uint32(asPg), uint32(thrPg), 0); err != nil {
		t.Fatal(err)
	}
	e, _, err := w.chk.SMC(kapi.SMCEnter, uint32(thrPg), 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrNotFinal {
		t.Fatalf("enter unfinalised: %v", e)
	}
	// Enter of a non-thread page.
	e, _, err = w.chk.SMC(kapi.SMCEnter, uint32(asPg), 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrNotThread {
		t.Fatalf("enter addrspace: %v", e)
	}
	// Enter of an out-of-range page.
	e, _, err = w.chk.SMC(kapi.SMCEnter, 9999, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrInvalidPageNo {
		t.Fatalf("enter bad page: %v", e)
	}
	// Enter of a stopped enclave.
	if _, _, err := w.chk.SMC(kapi.SMCFinalise, uint32(asPg)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.chk.SMC(kapi.SMCStop, uint32(asPg)); err != nil {
		t.Fatal(err)
	}
	e, _, err = w.chk.SMC(kapi.SMCEnter, uint32(thrPg), 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrNotFinal {
		t.Fatalf("enter stopped enclave: %v", e)
	}
}

func TestDestroyAndReuse(t *testing.T) {
	w := newWorld(t, board.Config{})
	enc := w.build(t, kasm.ExitConst(7))
	if _, _, err := w.os.Enter(enc); err != nil {
		t.Fatal(err)
	}
	if err := w.os.Destroy(enc); err != nil {
		t.Fatal(err)
	}
	// All pages free again: build and run a second enclave on them.
	enc2 := w.build(t, kasm.ExitConst(9))
	e, v, err := w.os.Enter(enc2)
	if err != nil || e != kapi.ErrSuccess || v != 9 {
		t.Fatalf("second enclave: %v %v %d", err, e, v)
	}
}

func TestScrubOnRemove(t *testing.T) {
	// Freed pages must not leak prior enclave contents to the next owner.
	w := newWorld(t, board.Config{})
	enc := w.build(t, kasm.StoreLoad())
	if _, _, err := w.os.Enter(enc); err != nil {
		t.Fatal(err)
	}
	dataPg := enc.Data[len(enc.Data)-1]
	if err := w.os.Destroy(enc); err != nil {
		t.Fatal(err)
	}
	base := w.plat.Machine.Phys.SecurePageBase(int(dataPg) + 2) // + reserved
	for off := uint32(0); off < mem.PageSize; off += 4 {
		v, err := w.plat.Machine.Phys.Read(base+off, mem.Secure)
		if err != nil {
			t.Fatal(err)
		}
		if v != 0 {
			t.Fatalf("freed page retains %#x at offset %d", v, off)
		}
	}
}

func TestAliasedInitAddrspaceRejected(t *testing.T) {
	// The §9.1 regression, end to end through the concrete monitor.
	w := newWorld(t, board.Config{})
	e, _, err := w.chk.SMC(kapi.SMCInitAddrspace, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrInvalidArg {
		t.Fatalf("aliased InitAddrspace: %v", e)
	}
	db, err := w.plat.Monitor.DecodePageDB()
	if err != nil {
		t.Fatal(err)
	}
	if !db.IsFree(pagedb.PageNr(5)) {
		t.Fatal("rejected call allocated the page anyway")
	}
}

func TestMapSecureRejectsSecureSource(t *testing.T) {
	// The OS may not use secure RAM as a MapSecure source (the §9.1
	// monitor-alias lesson).
	w := newWorld(t, board.Config{})
	asPg, _ := w.os.AllocPage()
	l1Pg, _ := w.os.AllocPage()
	w.chk.SMC(kapi.SMCInitAddrspace, uint32(asPg), uint32(l1Pg))
	l2Pg, _ := w.os.AllocPage()
	w.chk.SMC(kapi.SMCInitL2PTable, uint32(asPg), uint32(l2Pg), 0)
	dataPg, _ := w.os.AllocPage()
	m := kapi.NewMapping(0x1000, true, false)
	secureAddr := w.plat.Machine.Phys.Layout().SecureBase
	e, _, err := w.chk.SMC(kapi.SMCMapSecure, uint32(asPg), uint32(dataPg), uint32(m), secureAddr)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrInsecureInvalid {
		t.Fatalf("MapSecure from secure RAM: %v", e)
	}
}

func TestStaticProfile(t *testing.T) {
	w := newWorld(t, board.Config{Monitor: monitor.Config{StaticProfile: true}})
	// Building a plain enclave works under the SGXv1 profile.
	enc := w.build(t, kasm.ExitConst(3))
	e, v, err := w.os.Enter(enc)
	if err != nil || e != kapi.ErrSuccess || v != 3 {
		t.Fatalf("static profile enclave: %v %v %d", err, e, v)
	}
	// AllocSpare is absent.
	pg, _ := w.os.AllocPage()
	e, _, err = w.chk.SMC(kapi.SMCAllocSpare, uint32(enc.AS), uint32(pg))
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrInvalidArg {
		t.Fatalf("AllocSpare under static profile: %v", e)
	}
}

func TestExecutionTraceRecording(t *testing.T) {
	// The execution trace feeding the Enter/Resume relation records
	// exactly what happened: SVCs in order, then the terminal event.
	w := newWorld(t, board.Config{})
	enc := w.build(t, kasm.DynAlloc())
	if _, _, err := w.os.Enter(enc, uint32(enc.Spares[0])); err != nil {
		t.Fatal(err)
	}
	trace := w.plat.Monitor.Trace()
	if len(trace) != 2 {
		t.Fatalf("trace length = %d, want 2 (MapData, Exit)", len(trace))
	}
	if trace[0].Kind != spec.EventSVC || trace[0].Call != kapi.SVCMapData {
		t.Fatalf("event 0 = %+v", trace[0])
	}
	if trace[0].Args[0] != uint32(enc.Spares[0]) {
		t.Fatalf("MapData arg recorded as %d", trace[0].Args[0])
	}
	if trace[0].Res != kapi.ErrSuccess {
		t.Fatalf("MapData result recorded as %v", trace[0].Res)
	}
	if trace[1].Kind != spec.EventExit || trace[1].ExitVal != 0xfeed {
		t.Fatalf("terminal = %+v", trace[1])
	}
	// Faults record the type.
	f := w.build(t, kasm.Faulter(kasm.FaultWriteRO))
	if _, _, err := w.os.Enter(f); err != nil {
		t.Fatal(err)
	}
	trace = w.plat.Monitor.Trace()
	if len(trace) != 1 || trace[0].Kind != spec.EventFault || trace[0].FaultType != kapi.ExitDataAbort {
		t.Fatalf("fault trace = %+v", trace)
	}
	// A plain non-exec SMC clears the trace.
	if _, _, err := w.chk.SMC(kapi.SMCGetPhysPages); err != nil {
		t.Fatal(err)
	}
	if len(w.plat.Monitor.Trace()) != 0 {
		t.Fatal("trace not cleared by a non-exec SMC")
	}
}
