package monitor_test

import (
	"testing"

	"repro/internal/arm"
	"repro/internal/board"
	"repro/internal/kapi"
)

// Guard-path tests: the monitor's Go-level entry points enforce the
// architectural preconditions the hardware would.

func TestHandleSMCRequiresMonitorMode(t *testing.T) {
	plat, err := board.Boot(board.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The machine is in normal-world svc after boot — not monitor mode.
	if err := plat.Monitor.HandleSMC(); err == nil {
		t.Fatal("HandleSMC accepted a non-monitor-mode machine")
	}
}

func TestSMCHelperRequiresNormalWorldPrivileged(t *testing.T) {
	plat, err := board.Boot(board.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := plat.Machine
	// From the secure world: rejected (the helper models the OS).
	m.SetSCRNS(false)
	if _, _, err := plat.Monitor.SMC(kapi.SMCGetPhysPages); err == nil {
		t.Fatal("SMC helper accepted a secure-world caller")
	}
	m.SetSCRNS(true)
	// From user mode: rejected (SMC is a privileged instruction).
	c := m.CPSR()
	c.Mode = arm.ModeUsr
	m.SetCPSR(c)
	if _, _, err := plat.Monitor.SMC(kapi.SMCGetPhysPages); err == nil {
		t.Fatal("SMC helper accepted a user-mode caller")
	}
	// Too many arguments: rejected.
	c.Mode = arm.ModeSvc
	m.SetCPSR(c)
	if _, _, err := plat.Monitor.SMC(kapi.SMCGetPhysPages, 1, 2, 3, 4, 5); err == nil {
		t.Fatal("SMC helper accepted five arguments")
	}
}

func TestSpecParamsMatchPlatform(t *testing.T) {
	plat, err := board.Boot(board.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := plat.Monitor.SpecParams()
	l := plat.Machine.Phys.Layout()
	if p.NPages != plat.Monitor.NPages() {
		t.Fatal("NPages mismatch")
	}
	if p.InsecureBase != l.InsecureBase || p.InsecureSize != l.InsecureSize {
		t.Fatal("insecure region mismatch")
	}
	if p.AttestKey != plat.Monitor.AttestKey() {
		t.Fatal("attest key mismatch")
	}
	// The replay Rand is empty when no SMC has drawn randomness: it
	// returns zero rather than panicking.
	if p.Rand() != 0 {
		t.Fatal("empty RNG replay should return 0")
	}
}
