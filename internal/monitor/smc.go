package monitor

import (
	"fmt"

	"repro/internal/arm"
	"repro/internal/cycles"
	"repro/internal/kapi"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/pagedb"
	"repro/internal/sha2"
	"repro/internal/telemetry"
)

// HandleSMC is the monitor's top-level SMC handler. It must be called with
// the machine in monitor mode immediately after an SMC exception from the
// OS (the state smchandler(s, d, s', d') relates, §5.2). It dispatches on
// R0, writes the results to R0/R1, zeroes the other volatile registers
// ("other non-return registers are zeroed (to prevent information leaks)",
// §5.2), preserves the OS's non-volatile registers, and returns to the
// caller via exception return.
func (k *Monitor) HandleSMC() error {
	m := k.m
	if m.CPSR().Mode != arm.ModeMon {
		return fmt.Errorf("monitor: HandleSMC outside monitor mode (%v)", m.CPSR().Mode)
	}
	entryStart := m.Cyc.Total()
	m.Cyc.Charge(cycles.SMCEntry + cycles.RegSaveMinimal)
	k.smcStartCyc = m.Cyc.Total()
	k.rngTrace = nil
	k.trace = nil

	call := m.Reg(arm.R0)
	args := [4]uint32{m.Reg(arm.R1), m.Reg(arm.R2), m.Reg(arm.R3), m.Reg(arm.R4)}

	// Snapshot the OS's non-volatile registers (R5–R11; R0–R4 carry the
	// call and arguments, R12 is scratch); the prototype "conservatively
	// saves and restores every non-volatile register" (§8.1) — so do we,
	// including across enclave execution.
	var saved [7]uint32 // R5..R11
	for i := range saved {
		saved[i] = m.Reg(arm.Reg(5 + i))
	}

	bodyStart := m.Cyc.Total()
	errc, val, simErr := k.dispatchSMC(call, args)
	if simErr != nil {
		return simErr
	}
	bodyCyc := m.Cyc.Total() - bodyStart

	// Result registers and leak-prevention zeroing (§5.2: "non-volatile
	// registers are preserved, other non-return registers are zeroed").
	m.SetReg(arm.R0, uint32(errc))
	m.SetReg(arm.R1, val)
	m.SetReg(arm.R2, 0)
	m.SetReg(arm.R3, 0)
	m.SetReg(arm.R4, 0)
	m.SetReg(arm.R12, 0)
	for i := range saved {
		m.SetReg(arm.Reg(5+i), saved[i])
	}
	m.Cyc.Charge(cycles.SMCExit)
	m.ExceptionReturn()
	// Attribute the call's cycles to dispatch (world-switch mechanics:
	// entry, register save/restore, exit) versus body (the call's own
	// work), the split §8.1 analyses. Recording charges no cycles.
	totalCyc := m.Cyc.Total() - entryStart
	k.tel.ObserveSMC(call, args, uint32(errc), val, totalCyc, totalCyc-bodyCyc)
	return nil
}

func (k *Monitor) dispatchSMC(call uint32, a [4]uint32) (kapi.Err, uint32, error) {
	switch call {
	case kapi.SMCGetPhysPages:
		e, v := k.smcGetPhysPages()
		return e, v, nil
	case kapi.SMCInitAddrspace:
		e, v := k.smcInitAddrspace(a[0], a[1])
		return e, v, nil
	case kapi.SMCInitThread:
		e, v := k.smcInitThread(a[0], a[1], a[2])
		return e, v, nil
	case kapi.SMCInitL2PTable:
		e, v := k.smcInitL2PTable(a[0], a[1], a[2])
		return e, v, nil
	case kapi.SMCAllocSpare:
		e, v := k.smcAllocSpare(a[0], a[1])
		return e, v, nil
	case kapi.SMCMapSecure:
		e, v := k.smcMapSecure(a[0], a[1], kapi.Mapping(a[2]), a[3])
		return e, v, nil
	case kapi.SMCMapInsecure:
		e, v := k.smcMapInsecure(a[0], kapi.Mapping(a[1]), a[2])
		return e, v, nil
	case kapi.SMCFinalise:
		e, v := k.smcFinalise(a[0])
		return e, v, nil
	case kapi.SMCEnter:
		return k.smcEnter(a[0], a[1], a[2], a[3], false)
	case kapi.SMCResume:
		return k.smcEnter(a[0], 0, 0, 0, true)
	case kapi.SMCStop:
		e, v := k.smcStop(a[0])
		return e, v, nil
	case kapi.SMCRemove:
		e, v := k.smcRemove(a[0])
		return e, v, nil
	case kapi.SMCCheckpoint:
		return k.smcCheckpoint(a[0], a[1], a[2])
	case kapi.SMCRestore:
		return k.smcRestore(a[0], a[1], a[2], a[3])
	default:
		return kapi.ErrInvalidArg, 0, nil
	}
}

// --- individual SMC implementations over concrete state ---
// Validation order in each mirrors the specification exactly; that order
// is part of the spec (internal/spec/smc.go).

func (k *Monitor) smcGetPhysPages() (kapi.Err, uint32) {
	return kapi.ErrSuccess, k.rd(k.globalsAddr(gOffNPages))
}

// checkFree validates a page argument that must name a free page.
func (k *Monitor) checkFree(pg uint32) kapi.Err {
	if !k.validPage(pg) {
		return kapi.ErrInvalidPageNo
	}
	if k.pdType(pagedb.PageNr(pg)) != ctFree {
		return kapi.ErrPageInUse
	}
	return kapi.ErrSuccess
}

// checkAddrspace validates an addrspace page argument.
func (k *Monitor) checkAddrspace(pg uint32) kapi.Err {
	if !k.validPage(pg) {
		return kapi.ErrInvalidPageNo
	}
	if k.pdType(pagedb.PageNr(pg)) != ctAddrspace {
		return kapi.ErrInvalidAddrspace
	}
	return kapi.ErrSuccess
}

func (k *Monitor) smcInitAddrspace(asPg, l1Pg uint32) (kapi.Err, uint32) {
	if e := k.checkFree(asPg); e != kapi.ErrSuccess {
		return err1(e)
	}
	if e := k.checkFree(l1Pg); e != kapi.ErrSuccess {
		return err1(e)
	}
	if asPg == l1Pg {
		// The aliased-arguments case the paper's unverified prototype
		// missed (§9.1).
		return err1(kapi.ErrInvalidArg)
	}
	as, l1 := pagedb.PageNr(asPg), pagedb.PageNr(l1Pg)
	// The L1 page becomes a live hardware page table: it must start empty.
	k.zeroPage(l1)
	k.zeroPage(as)
	base := k.physPage(as)
	k.wr(base+asOffState, csInit)
	k.wr(base+asOffL1PT, uint32(l1Pg))
	k.wr(base+asOffL1PTSet, 1)
	k.wr(base+asOffRefCount, 1)
	// Initialise the running measurement to a fresh SHA-256 state.
	k.storeMeasurement(as, sha2.New())
	k.pdSet(as, ctAddrspace, as)
	k.pdSet(l1, ctL1PT, as)
	return kapi.ErrSuccess, 0
}

func (k *Monitor) smcInitThread(asPg, thrPg, entry uint32) (kapi.Err, uint32) {
	if e := k.checkAddrspace(asPg); e != kapi.ErrSuccess {
		return err1(e)
	}
	as := pagedb.PageNr(asPg)
	if k.asState(as) != csInit {
		return err1(kapi.ErrAlreadyFinal)
	}
	if e := k.checkFree(thrPg); e != kapi.ErrSuccess {
		return err1(e)
	}
	th := pagedb.PageNr(thrPg)
	k.zeroPage(th)
	k.wr(k.physPage(th)+thOffEntry, entry)
	k.pdSet(th, ctThread, as)
	k.asAddRef(as, 1)
	s := k.loadMeasurement(as)
	s.WriteWords([]uint32{kapi.SMCInitThread, entry})
	k.storeMeasurement(as, s)
	return kapi.ErrSuccess, 0
}

func (k *Monitor) smcInitL2PTable(asPg, l2Pg, l1index uint32) (kapi.Err, uint32) {
	if e := k.checkAddrspace(asPg); e != kapi.ErrSuccess {
		return err1(e)
	}
	as := pagedb.PageNr(asPg)
	if k.asState(as) != csInit {
		return err1(kapi.ErrAlreadyFinal)
	}
	if l1index >= mmu.L1Entries {
		return err1(kapi.ErrInvalidMapping)
	}
	if e := k.checkFree(l2Pg); e != kapi.ErrSuccess {
		return err1(e)
	}
	l1, _ := k.asL1PT(as)
	l1Base := k.physPage(l1)
	slot := l1Base + l1index*4
	if k.rd(slot) != 0 {
		return err1(kapi.ErrAddrInUse)
	}
	l2 := pagedb.PageNr(l2Pg)
	k.zeroPage(l2)
	k.wr(slot, k.physPage(l2)|mmu.PteValid)
	k.m.NotePTStore()
	k.pdSet(l2, ctL2PT, as)
	k.asAddRef(as, 1)
	return kapi.ErrSuccess, 0
}

func (k *Monitor) smcAllocSpare(asPg, sparePg uint32) (kapi.Err, uint32) {
	if k.staticProfile {
		return err1(kapi.ErrInvalidArg)
	}
	if e := k.checkAddrspace(asPg); e != kapi.ErrSuccess {
		return err1(e)
	}
	as := pagedb.PageNr(asPg)
	if k.asState(as) == csStopped {
		return err1(kapi.ErrInvalidAddrspace)
	}
	if e := k.checkFree(sparePg); e != kapi.ErrSuccess {
		return err1(e)
	}
	k.pdSet(pagedb.PageNr(sparePg), ctSpare, as)
	k.asAddRef(as, 1)
	return kapi.ErrSuccess, 0
}

// insecureOK validates an insecure physical address argument, including
// the monitor-alias check the paper's prototype missed (§9.1). In our
// address map the monitor's pages are in secure RAM, so the region check
// subsumes the alias check, but both are written out to preserve the
// specification's structure.
func (k *Monitor) insecureOK(pa uint32) bool {
	if pa%mem.PageSize != 0 {
		return false
	}
	l := k.m.Phys.Layout()
	if pa < l.InsecureBase || uint64(pa)+mem.PageSize > uint64(l.InsecureBase)+uint64(l.InsecureSize) {
		return false
	}
	if k.m.Phys.InSecure(pa) { // monitor/enclave pages can never alias
		return false
	}
	return true
}

// mappingSlot resolves a mapping to the physical address of the L2 PTE it
// will occupy, mirroring spec.mappingTarget.
func (k *Monitor) mappingSlot(as pagedb.PageNr, m kapi.Mapping) (uint32, kapi.Err) {
	if !m.Valid() {
		return 0, kapi.ErrInvalidMapping
	}
	l1, set := k.asL1PT(as)
	if !set {
		return 0, kapi.ErrInvalidMapping
	}
	l1e := k.rd(k.physPage(l1) + uint32(mmu.L1Index(m.VA()))*4)
	if l1e&mmu.PteValid == 0 {
		return 0, kapi.ErrInvalidMapping
	}
	slot := (l1e &^ uint32(mem.PageSize-1)) + uint32(mmu.L2Index(m.VA()))*4
	if k.rd(slot) != 0 {
		return 0, kapi.ErrAddrInUse
	}
	return slot, kapi.ErrSuccess
}

func (k *Monitor) pteFor(target uint32, m kapi.Mapping, insecure bool) uint32 {
	p := mmu.Perms{Write: m.Write(), Exec: m.Exec(), NS: insecure}
	return mmu.PTE(target, p)
}

func (k *Monitor) smcMapSecure(asPg, dataPg uint32, m kapi.Mapping, contentAddr uint32) (kapi.Err, uint32) {
	if e := k.checkAddrspace(asPg); e != kapi.ErrSuccess {
		return err1(e)
	}
	as := pagedb.PageNr(asPg)
	if k.asState(as) != csInit {
		return err1(kapi.ErrAlreadyFinal)
	}
	if e := k.checkFree(dataPg); e != kapi.ErrSuccess {
		return err1(e)
	}
	slot, e := k.mappingSlot(as, m)
	if e != kapi.ErrSuccess {
		return err1(e)
	}
	if !k.insecureOK(contentAddr) {
		return err1(kapi.ErrInsecureInvalid)
	}
	data := pagedb.PageNr(dataPg)
	// Copy the insecure page into the secure data page, hashing as we go
	// (the longest-running monitor call: "MapSecure initialises and
	// hashes a single page of memory", §7.2).
	dstBase := k.physPage(data)
	s := k.loadMeasurement(as)
	s.WriteWords([]uint32{kapi.SMCMapSecure, uint32(m)})
	var contents [mem.PageWords]uint32
	for i := 0; i < mem.PageWords; i++ {
		w, err := k.m.Phys.Read(contentAddr+uint32(i*4), mem.Secure)
		if err != nil {
			panic(fmt.Sprintf("monitor: MapSecure source read: %v", err))
		}
		contents[i] = w
	}
	if err := k.m.Phys.WritePage(dstBase, &contents, mem.Secure); err != nil {
		panic(fmt.Sprintf("monitor: MapSecure copy: %v", err))
	}
	k.m.Cyc.Charge(cycles.PageCopy)
	s.WriteWords(contents[:])
	k.storeMeasurement(as, s)
	k.wr(slot, k.pteFor(dstBase, m, false))
	k.m.NotePTStore()
	k.pdSet(data, ctData, as)
	k.asAddRef(as, 1)
	k.tel.ObservePageMove(telemetry.MoveToSecure, dataPg)
	return kapi.ErrSuccess, 0
}

func (k *Monitor) smcMapInsecure(asPg uint32, m kapi.Mapping, target uint32) (kapi.Err, uint32) {
	if e := k.checkAddrspace(asPg); e != kapi.ErrSuccess {
		return err1(e)
	}
	as := pagedb.PageNr(asPg)
	if k.asState(as) != csInit {
		return err1(kapi.ErrAlreadyFinal)
	}
	slot, e := k.mappingSlot(as, m)
	if e != kapi.ErrSuccess {
		return err1(e)
	}
	if !k.insecureOK(target) {
		return err1(kapi.ErrInsecureInvalid)
	}
	k.wr(slot, k.pteFor(target, m, true))
	k.m.NotePTStore()
	k.tel.ObservePageMove(telemetry.MoveInsecureShared, target/mem.PageSize)
	return kapi.ErrSuccess, 0
}

func (k *Monitor) smcFinalise(asPg uint32) (kapi.Err, uint32) {
	if e := k.checkAddrspace(asPg); e != kapi.ErrSuccess {
		return err1(e)
	}
	as := pagedb.PageNr(asPg)
	if k.asState(as) != csInit {
		return err1(kapi.ErrAlreadyFinal)
	}
	s := k.loadMeasurement(as)
	sum := s.SumWords()
	base := k.physPage(as)
	for i, w := range sum {
		k.wr(base+asOffMeasured+uint32(i*4), w)
	}
	k.m.Cyc.Charge(cycles.SHABlock * s.Blocks()) // padding compression
	k.asSetState(as, csFinal)
	return kapi.ErrSuccess, 0
}

func (k *Monitor) smcStop(asPg uint32) (kapi.Err, uint32) {
	if e := k.checkAddrspace(asPg); e != kapi.ErrSuccess {
		return err1(e)
	}
	k.asSetState(pagedb.PageNr(asPg), csStopped)
	return kapi.ErrSuccess, 0
}

func (k *Monitor) smcRemove(pg uint32) (kapi.Err, uint32) {
	if !k.validPage(pg) {
		return err1(kapi.ErrInvalidPageNo)
	}
	n := pagedb.PageNr(pg)
	switch k.pdType(n) {
	case ctFree:
		return kapi.ErrSuccess, 0
	case ctAddrspace:
		if k.asState(n) != csStopped {
			return err1(kapi.ErrNotStopped)
		}
		if k.asRefCount(n) != 0 {
			return err1(kapi.ErrPageInUse)
		}
		k.scrubPage(n)
		k.pdSet(n, ctFree, 0)
		return kapi.ErrSuccess, 0
	case ctSpare:
		owner := k.pdOwner(n)
		k.asAddRef(owner, -1)
		k.scrubPage(n)
		k.pdSet(n, ctFree, 0)
		return kapi.ErrSuccess, 0
	default:
		owner := k.pdOwner(n)
		if k.asState(owner) != csStopped {
			return err1(kapi.ErrNotStopped)
		}
		k.asAddRef(owner, -1)
		k.scrubPage(n)
		k.pdSet(n, ctFree, 0)
		return kapi.ErrSuccess, 0
	}
}

// scrubPage zeroes a page being freed so its contents cannot leak into the
// next enclave that allocates it.
func (k *Monitor) scrubPage(n pagedb.PageNr) {
	k.zeroPageRaw(n)
	k.tel.ObservePageMove(telemetry.MoveScrubbed, uint32(n))
}
