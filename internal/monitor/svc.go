package monitor

import (
	"repro/internal/cycles"
	"repro/internal/kapi"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/pagedb"
	"repro/internal/seal"
	"repro/internal/sha2"
)

// dispatchSVC handles a supervisor call from the executing enclave thread.
// Results go back to the enclave in R0 (error) and R1–R8 (values); the
// register write-back is done by the caller (smcEnter's loop).
func (k *Monitor) dispatchSVC(th, as pagedb.PageNr, call uint32, args [8]uint32) (kapi.Err, [8]uint32) {
	var vals [8]uint32
	switch call {
	case kapi.SVCGetRandom:
		v := k.m.RNG.Word()
		k.m.Cyc.Charge(cycles.RNGWord)
		k.rngTrace = append(k.rngTrace, v)
		vals[0] = v
		return kapi.ErrSuccess, vals

	case kapi.SVCAttest:
		vals = k.computeMAC(k.asMeasured(as), args)
		return kapi.ErrSuccess, vals

	case kapi.SVCVerifyStep0:
		base := k.physPage(th)
		for i, w := range args {
			k.wr(base+thOffVerData+uint32(i*4), w)
		}
		return kapi.ErrSuccess, vals

	case kapi.SVCVerifyStep1:
		base := k.physPage(th)
		for i, w := range args {
			k.wr(base+thOffVerMeas+uint32(i*4), w)
		}
		return kapi.ErrSuccess, vals

	case kapi.SVCVerifyStep2:
		base := k.physPage(th)
		var data, meas [8]uint32
		for i := 0; i < 8; i++ {
			data[i] = k.rd(base + thOffVerData + uint32(i*4))
			meas[i] = k.rd(base + thOffVerMeas + uint32(i*4))
		}
		want := k.computeMAC(meas, data)
		if macEqual(want, args) {
			vals[0] = 1
		}
		return kapi.ErrSuccess, vals

	case kapi.SVCInitL2PTable:
		return k.svcInitL2PTable(as, args[0], args[1]), vals

	case kapi.SVCMapData:
		return k.svcMapData(as, args[0], kapi.Mapping(args[1])), vals

	case kapi.SVCUnmapData:
		return k.svcUnmapData(as, args[0], kapi.Mapping(args[1])), vals

	case kapi.SVCSetFaultHandler:
		if args[0] >= 1<<30 {
			return kapi.ErrInvalidArg, vals
		}
		k.thSetHandler(th, args[0])
		return kapi.ErrSuccess, vals

	case kapi.SVCGetSealKey:
		// The SGX EGETKEY analogue: hand the enclave its own
		// measurement-bound sealing key. One HMAC over the 50-byte
		// derivation message (docs/SEALING.md).
		key := seal.DeriveKey(k.sealRoot, k.asMeasured(as))
		k.m.Cyc.Charge(cycles.HMACFixed + cycles.SHABlock*sha2.HMACBlocks(18+32))
		copy(vals[:], sha2.BytesToWords(key[:]))
		return kapi.ErrSuccess, vals

	// SVCFaultReturn outside a fault handler falls through to the default
	// rejection (the in-handler case is special-cased by the execution
	// loop, which restores the interrupted context wholesale).
	default:
		return kapi.ErrInvalidArg, vals
	}
}

// computeMAC is the concrete attestation MAC: HMAC-SHA256 over measurement
// then data, keyed by the boot secret, with Table 3's Attest/Verify cycle
// cost.
func (k *Monitor) computeMAC(measurement, data [8]uint32) [8]uint32 {
	msg := make([]uint32, 0, 16)
	msg = append(msg, measurement[:]...)
	msg = append(msg, data[:]...)
	mac := sha2.HMAC(k.attestKey[:], sha2.WordsToBytes(msg))
	k.m.Cyc.Charge(cycles.HMACFixed + cycles.SHABlock*sha2.HMACBlocks(64))
	var out [8]uint32
	copy(out[:], sha2.BytesToWords(mac[:]))
	return out
}

func macEqual(a, b [8]uint32) bool {
	// Constant-time over the 8 words, as Verify must not leak the
	// diverging position.
	var diff uint32
	for i := range a {
		diff |= a[i] ^ b[i]
	}
	return diff == 0
}

// checkOwnedSpare validates a spare-page argument for the dynamic SVCs.
func (k *Monitor) checkOwnedSpare(as pagedb.PageNr, pg uint32) kapi.Err {
	if !k.validPage(pg) {
		return kapi.ErrInvalidPageNo
	}
	n := pagedb.PageNr(pg)
	if k.pdType(n) != ctSpare || k.pdOwner(n) != as {
		return kapi.ErrNotSpare
	}
	return kapi.ErrSuccess
}

func (k *Monitor) svcInitL2PTable(as pagedb.PageNr, sparePg, l1index uint32) kapi.Err {
	if k.staticProfile {
		return kapi.ErrInvalidArg
	}
	if e := k.checkOwnedSpare(as, sparePg); e != kapi.ErrSuccess {
		return e
	}
	if l1index >= mmu.L1Entries {
		return kapi.ErrInvalidMapping
	}
	l1, _ := k.asL1PT(as)
	slot := k.physPage(l1) + l1index*4
	if k.rd(slot) != 0 {
		return kapi.ErrAddrInUse
	}
	sp := pagedb.PageNr(sparePg)
	k.zeroPage(sp)
	k.wr(slot, k.physPage(sp)|mmu.PteValid)
	k.m.NotePTStore()
	k.pdSet(sp, ctL2PT, as)
	// The live page-table set grew; re-register it and restore TLB
	// consistency before returning to the enclave.
	k.m.SetPageTablePages(k.pageTablePages(as))
	k.m.TLB.Flush()
	k.m.Cyc.Charge(cycles.TLBFlush)
	return kapi.ErrSuccess
}

func (k *Monitor) svcMapData(as pagedb.PageNr, sparePg uint32, m kapi.Mapping) kapi.Err {
	if k.staticProfile {
		return kapi.ErrInvalidArg
	}
	if e := k.checkOwnedSpare(as, sparePg); e != kapi.ErrSuccess {
		return e
	}
	slot, e := k.mappingSlot(as, m)
	if e != kapi.ErrSuccess {
		return e
	}
	sp := pagedb.PageNr(sparePg)
	k.zeroPage(sp) // "Map spare page as zero-filled data page" (Table 1)
	k.wr(slot, k.pteFor(k.physPage(sp), m, false))
	k.m.NotePTStore()
	k.pdSet(sp, ctData, as)
	k.m.TLB.Flush()
	k.m.Cyc.Charge(cycles.TLBFlush)
	return kapi.ErrSuccess
}

func (k *Monitor) svcUnmapData(as pagedb.PageNr, dataPg uint32, m kapi.Mapping) kapi.Err {
	if k.staticProfile {
		return kapi.ErrInvalidArg
	}
	if !k.validPage(dataPg) {
		return kapi.ErrInvalidPageNo
	}
	n := pagedb.PageNr(dataPg)
	if k.pdType(n) != ctData || k.pdOwner(n) != as {
		return kapi.ErrInvalidArg
	}
	if !m.Valid() {
		return kapi.ErrInvalidMapping
	}
	// The VA must currently map exactly this page.
	l1, set := k.asL1PT(as)
	if !set {
		return kapi.ErrInvalidMapping
	}
	l1e := k.rd(k.physPage(l1) + uint32(mmu.L1Index(m.VA()))*4)
	if l1e&mmu.PteValid == 0 {
		return kapi.ErrInvalidMapping
	}
	slot := (l1e &^ uint32(mem.PageSize-1)) + uint32(mmu.L2Index(m.VA()))*4
	pte := k.rd(slot)
	base, perms, valid := mmu.DecodePTE(pte)
	if !valid || perms.NS || base != k.physPage(n) {
		return kapi.ErrInvalidMapping
	}
	k.wr(slot, 0)
	k.m.NotePTStore()
	k.pdSet(n, ctSpare, as)
	k.m.TLB.Flush()
	k.m.Cyc.Charge(cycles.TLBFlush)
	return kapi.ErrSuccess
}
