package monitor

import (
	"fmt"

	"repro/internal/arm"
	"repro/internal/cycles"
	"repro/internal/kapi"
	"repro/internal/mem"
	"repro/internal/pagedb"
	"repro/internal/seal"
	"repro/internal/sha2"
	"repro/internal/spec"
	"repro/internal/telemetry"
)

// Monitor is the concrete Komodo monitor instance bound to a machine.
type Monitor struct {
	m      *arm.Machine
	npages int

	// attestKey caches the boot-derived attestation secret (also stored
	// in the globals page; the cache avoids 8 memory reads per MAC).
	attestKey [32]byte

	// sealRoot is the sealing-key root, derived from the boot secret at
	// install (docs/SEALING.md). Like attestKey it is cached from the
	// globals page.
	sealRoot [32]byte

	// ExecBudget bounds simulated enclave instructions per Enter/Resume;
	// exceeding it is a simulation error (real hardware would simply keep
	// running until an interrupt).
	ExecBudget int64

	// recording state for the refinement harness.
	recording bool
	trace     []spec.ExecEvent
	rngTrace  []uint32

	staticProfile bool
	optimised     bool

	// Cycle probes for the Table 3 microbenchmarks: cycles from SMC entry
	// until the first enclave instruction would execute ("Enter only" /
	// "Resume only (no return)" rows).
	smcStartCyc    uint64
	LastEnterSetup uint64

	// tel collects counters and trace events. Nil-receiver safe, so the
	// uninstrumented monitor pays only a nil check; observations never
	// charge simulated cycles (they must not perturb the cycle model).
	tel *telemetry.Recorder
}

// Config parameterises Install.
type Config struct {
	// StaticProfile disables dynamic memory management, modelling the
	// paper's first (SGXv1-style) Komodo version (§7.3).
	StaticProfile bool
	// ExecBudget bounds enclave instructions per entry (default 50M).
	ExecBudget int64
	// Optimised enables the crossing optimisations the paper's prototype
	// deliberately omits pending proof (§8.1): skip the TLB flush "for
	// repeated invocation of the same enclave" when the live page tables
	// are untouched, and skip the conservative banked-register
	// save/restore cost for registers "known to be preserved". Used by
	// the ablation benchmark; the default is the paper-faithful
	// unoptimised monitor.
	Optimised bool
}

// Install initialises the monitor on a freshly booted machine: it derives
// the attestation key from the hardware RNG, zeroes the PageDB, and
// records the secure-page count. This is the role of the paper's trusted
// bootloader (§7.2): "loads the monitor in secure world, setting up its
// memory map and exception vectors... reserves a configurable amount of
// RAM as secure memory".
func Install(m *arm.Machine, cfg Config) (*Monitor, error) {
	total := m.Phys.SecurePageCount()
	if total <= ReservedPages {
		return nil, fmt.Errorf("monitor: secure region too small: %d pages", total)
	}
	npages := total - ReservedPages
	if npages > 256 {
		// The PageDB table page holds at most 256 two-word entries; a
		// larger secure region would need a multi-page table.
		npages = 256
	}
	k := &Monitor{m: m, npages: npages, ExecBudget: 50_000_000,
		staticProfile: cfg.StaticProfile, optimised: cfg.Optimised}
	if cfg.ExecBudget > 0 {
		k.ExecBudget = cfg.ExecBudget
	}

	// Derive the attestation key from the hardware entropy source (§4:
	// "a secret key generated at boot from a cryptographically secure
	// source of randomness").
	keyWords := m.RNG.Words(8)
	key := sha2.WordsToBytes(keyWords)
	copy(k.attestKey[:], key)
	m.Cyc.Charge(cycles.RNGWord * 8)

	// Derive the sealing root from the boot secret (one HMAC) and persist
	// it alongside the attestation key. Sealing never uses the boot
	// secret directly, so a future sealed-storage compromise cannot walk
	// back to the attestation identity.
	k.sealRoot = seal.DeriveRoot(k.attestKey)
	m.Cyc.Charge(cycles.HMACFixed + cycles.SHABlock*sha2.HMACBlocks(len("komodo-seal-root-v1")))

	// Persist globals and zero the PageDB table.
	k.wr(k.globalsAddr(gOffNPages), uint32(npages))
	for i, w := range keyWords {
		k.wr(k.globalsAddr(gOffAttestKey)+uint32(i*4), w)
	}
	for i, w := range sha2.BytesToWords(k.sealRoot[:]) {
		k.wr(k.globalsAddr(gOffSealRoot)+uint32(i*4), w)
	}
	pdb := m.Phys.SecurePageBase(pdbPage)
	if err := m.Phys.ZeroPage(pdb, mem.Secure); err != nil {
		return nil, err
	}
	// Exception vector bases (kept for architectural fidelity; the Go
	// handlers below play the vector code's role).
	m.SetMVBAR(0xffff_0000)
	m.SetVBAR(0xffff_1000)
	return k, nil
}

// SetTelemetry attaches a telemetry recorder. Pass nil to detach; a nil
// recorder is a no-op on every observation path.
func (k *Monitor) SetTelemetry(t *telemetry.Recorder) { k.tel = t }

// Telemetry returns the attached recorder (nil if none).
func (k *Monitor) Telemetry() *telemetry.Recorder { return k.tel }

// NPages returns the number of allocatable secure pages.
func (k *Monitor) NPages() int { return k.npages }

// Machine returns the underlying machine (tests and the OS model use it).
func (k *Monitor) Machine() *arm.Machine { return k.m }

// AttestKey exposes the boot secret to the verification harness only (the
// spec needs it to recompute MACs). Nothing in the OS model uses this.
func (k *Monitor) AttestKey() [32]byte { return k.attestKey }

// SealRoot exposes the sealing root to the verification harness and
// offline tooling (komodo-ckpt) only. Nothing in the OS model uses this.
func (k *Monitor) SealRoot() [32]byte { return k.sealRoot }

// StaticProfile reports whether the SGXv1-style profile is active.
func (k *Monitor) StaticProfile() bool { return k.staticProfile }

// SpecParams builds the specification parameters matching this monitor
// instance. Rand replays the RNG words recorded during the last SMC, so
// refinement checking sees the same nondeterminism the implementation drew
// (§6.3's shared seed).
func (k *Monitor) SpecParams() spec.Params {
	l := k.m.Phys.Layout()
	replay := k.RNGTrace()
	i := 0
	return spec.Params{
		NPages:        k.npages,
		InsecureBase:  l.InsecureBase,
		InsecureSize:  l.InsecureSize,
		AttestKey:     k.attestKey,
		StaticProfile: k.staticProfile,
		Rand: func() uint32 {
			if i >= len(replay) {
				return 0
			}
			v := replay[i]
			i++
			return v
		},
	}
}

// SetRecording enables execution-trace recording for refinement checks.
func (k *Monitor) SetRecording(on bool) { k.recording = on }

// Trace returns the execution trace of the last Enter/Resume SMC.
func (k *Monitor) Trace() []spec.ExecEvent { return append([]spec.ExecEvent(nil), k.trace...) }

// RNGTrace returns the random words drawn during the last SMC.
func (k *Monitor) RNGTrace() []uint32 { return append([]uint32(nil), k.rngTrace...) }

// --- concrete memory accessors (secure world, word granularity) ---

// rd and wr panic on access errors: the monitor accesses only monitor and
// enclave pages in secure RAM, and a failure there is a simulator bug, not
// an architectural event (the paper's monitor proves its accesses valid;
// our invariant is the same).
func (k *Monitor) rd(addr uint32) uint32 {
	v, err := k.m.Phys.Read(addr, mem.Secure)
	if err != nil {
		panic(fmt.Sprintf("monitor: secure read %#x: %v", addr, err))
	}
	k.m.Cyc.Charge(cycles.WordRead)
	return v
}

func (k *Monitor) wr(addr, val uint32) {
	if err := k.m.Phys.Write(addr, val, mem.Secure); err != nil {
		panic(fmt.Sprintf("monitor: secure write %#x: %v", addr, err))
	}
	k.m.Cyc.Charge(cycles.WordWrite)
}

// --- PageDB table accessors ---

func (k *Monitor) pdType(n pagedb.PageNr) uint32 {
	k.m.Cyc.Charge(cycles.PageDBLookup)
	return k.rd(k.pdbAddr(n) + pdbOffType)
}

func (k *Monitor) pdOwner(n pagedb.PageNr) pagedb.PageNr {
	return pagedb.PageNr(k.rd(k.pdbAddr(n) + pdbOffOwner))
}

func (k *Monitor) pdSet(n pagedb.PageNr, ct uint32, owner pagedb.PageNr) {
	k.m.Cyc.Charge(cycles.PageDBLookup)
	k.wr(k.pdbAddr(n)+pdbOffType, ct)
	k.wr(k.pdbAddr(n)+pdbOffOwner, uint32(owner))
	// Any allocation-state change conservatively invalidates TLB
	// consistency: a freed-and-reused page may still be reachable through
	// cached translations. This is what makes the optimised crossing's
	// skip-flush fast path sound (it requires Consistent()).
	k.m.NotePTStore()
}

func (k *Monitor) validPage(n uint32) bool { return n < uint32(k.npages) }

// --- addrspace page field accessors ---

func (k *Monitor) asState(as pagedb.PageNr) uint32 {
	return k.rd(k.physPage(as) + asOffState)
}

func (k *Monitor) asSetState(as pagedb.PageNr, s uint32) {
	k.wr(k.physPage(as)+asOffState, s)
}

func (k *Monitor) asL1PT(as pagedb.PageNr) (pagedb.PageNr, bool) {
	base := k.physPage(as)
	return pagedb.PageNr(k.rd(base + asOffL1PT)), k.rd(base+asOffL1PTSet) != 0
}

func (k *Monitor) asRefCount(as pagedb.PageNr) uint32 {
	return k.rd(k.physPage(as) + asOffRefCount)
}

func (k *Monitor) asAddRef(as pagedb.PageNr, delta int32) {
	a := k.physPage(as) + asOffRefCount
	k.wr(a, uint32(int32(k.rd(a))+delta))
}

// loadMeasurement reconstructs the running measurement hash from the
// addrspace page.
func (k *Monitor) loadMeasurement(as pagedb.PageNr) *sha2.Hash {
	base := k.physPage(as)
	var h [8]uint32
	for i := range h {
		h[i] = k.rd(base + asOffHashH + uint32(i*4))
	}
	nbuf := int(k.rd(base + asOffHashNbuf))
	length := uint64(k.rd(base+asOffHashLenL)) | uint64(k.rd(base+asOffHashLenH))<<32
	var buf [sha2.BlockSize]byte
	for i := 0; i < sha2.BlockSize/4; i++ {
		w := k.rd(base + asOffHashBuf + uint32(i*4))
		buf[i*4] = byte(w >> 24)
		buf[i*4+1] = byte(w >> 16)
		buf[i*4+2] = byte(w >> 8)
		buf[i*4+3] = byte(w)
	}
	var s sha2.Hash
	s.Unmarshal(h, buf, nbuf, length)
	return &s
}

// storeMeasurement persists the hash state back and charges compression
// cycles for the blocks processed since load.
func (k *Monitor) storeMeasurement(as pagedb.PageNr, s *sha2.Hash) {
	base := k.physPage(as)
	h, buf, nbuf, length := s.Marshal()
	for i := range h {
		k.wr(base+asOffHashH+uint32(i*4), h[i])
	}
	k.wr(base+asOffHashNbuf, uint32(nbuf))
	k.wr(base+asOffHashLenL, uint32(length))
	k.wr(base+asOffHashLenH, uint32(length>>32))
	for i := 0; i < sha2.BlockSize/4; i++ {
		w := uint32(buf[i*4])<<24 | uint32(buf[i*4+1])<<16 | uint32(buf[i*4+2])<<8 | uint32(buf[i*4+3])
		k.wr(base+asOffHashBuf+uint32(i*4), w)
	}
	k.m.Cyc.Charge(cycles.SHABlock * s.Blocks())
}

func (k *Monitor) asMeasured(as pagedb.PageNr) [8]uint32 {
	base := k.physPage(as)
	var out [8]uint32
	for i := range out {
		out[i] = k.rd(base + asOffMeasured + uint32(i*4))
	}
	return out
}

// --- thread page field accessors ---

func (k *Monitor) thEntered(th pagedb.PageNr) bool {
	return k.rd(k.physPage(th)+thOffEntered) != 0
}

func (k *Monitor) thSetEntered(th pagedb.PageNr, v bool) {
	var w uint32
	if v {
		w = 1
	}
	k.wr(k.physPage(th)+thOffEntered, w)
}

func (k *Monitor) thEntry(th pagedb.PageNr) uint32 {
	return k.rd(k.physPage(th) + thOffEntry)
}

func (k *Monitor) thHandler(th pagedb.PageNr) uint32 {
	return k.rd(k.physPage(th) + thOffHandler)
}

func (k *Monitor) thSetHandler(th pagedb.PageNr, addr uint32) {
	k.wr(k.physPage(th)+thOffHandler, addr)
}

func (k *Monitor) thInHandler(th pagedb.PageNr) bool {
	return k.rd(k.physPage(th)+thOffInHandler) != 0
}

func (k *Monitor) thSetInHandler(th pagedb.PageNr, v bool) {
	var w uint32
	if v {
		w = 1
	}
	k.wr(k.physPage(th)+thOffInHandler, w)
}

// readSVCArgs snapshots the SVC argument registers R1–R8.
func (k *Monitor) readSVCArgs() [8]uint32 {
	var args [8]uint32
	for i := 0; i < 8; i++ {
		args[i] = k.m.Reg(arm.Reg(1 + i))
	}
	return args
}

// zeroPage zero-fills an enclave page, charging the Table 3 cost.
func (k *Monitor) zeroPage(n pagedb.PageNr) {
	k.zeroPageRaw(n)
	k.tel.ObservePageMove(telemetry.MoveZeroFilled, uint32(n))
}

// zeroPageRaw is zeroPage without the telemetry classification, for
// callers that account the page movement themselves (scrubPage).
func (k *Monitor) zeroPageRaw(n pagedb.PageNr) {
	if err := k.m.Phys.ZeroPage(k.physPage(n), mem.Secure); err != nil {
		panic(fmt.Sprintf("monitor: zero page %d: %v", n, err))
	}
	k.m.Cyc.Charge(cycles.PageZero)
}

// err1 packs an error with a zero value.
func err1(e kapi.Err) (kapi.Err, uint32) { return e, 0 }
