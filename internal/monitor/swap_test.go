package monitor_test

import (
	"testing"

	"repro/internal/board"
	"repro/internal/kapi"
	"repro/internal/kasm"
)

// TestEnclaveManagedEncryptedSwap drives the full §9.2 composition: the
// enclave evicts a page to insecure memory under its own encryption, the
// plaintext ceases to exist anywhere the OS can reach, and a later touch
// swaps it back in through the fault handler — all invisible to the OS,
// all refinement-checked.
func TestEnclaveManagedEncryptedSwap(t *testing.T) {
	w := newWorld(t, board.Config{})
	enc := w.build(t, kasm.SwapDemo())
	spare := uint32(enc.Spares[0])

	// Evict.
	e, sum1, err := w.os.Enter(enc, 0, spare)
	if err != nil || e != kapi.ErrSuccess {
		t.Fatalf("evict: %v %v", err, e)
	}
	if sum1 == 0 {
		t.Fatal("checksum zero — fill did not run")
	}

	// The OS inspects the swapped-out page in insecure memory: it must
	// not contain the plaintext fill pattern (word 0 would be 0x1234).
	swapped, err := w.os.ReadInsecure(enc.SharedPA[0], 8)
	if err != nil {
		t.Fatal(err)
	}
	if swapped[0] == 0x1234 {
		t.Fatal("swapped-out page is plaintext")
	}
	// And the enclave page itself is a spare again: the plaintext exists
	// nowhere (the monitor zero-fills on the next MapData anyway).
	eRem, _, _ := w.chk.SMC(kapi.SMCRemove, spare)
	if eRem != kapi.ErrSuccess {
		t.Fatalf("evicted page not reclaimable-as-spare: %v", eRem)
	}
	// Give it back (the enclave still needs it for swap-in).
	eRet, _, _ := w.chk.SMC(kapi.SMCAllocSpare, uint32(enc.AS), spare)
	if eRet != kapi.ErrSuccess {
		t.Fatalf("re-granting spare: %v", eRet)
	}

	// Touch: the walk faults, the handler swaps the page back in, and the
	// checksum matches — the OS saw one clean call.
	e, sum2, err := w.os.Enter(enc, 1, spare)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrFault {
		// The fault was handled inside the enclave; only success is
		// visible.
		if e != kapi.ErrSuccess {
			t.Fatalf("touch: %v", e)
		}
	} else {
		t.Fatal("swap-in fault leaked to the OS")
	}
	if sum2 != sum1 {
		t.Fatalf("checksum after swap-in = %#x, want %#x", sum2, sum1)
	}
}

// TestSwapOutTamperDetectedByChecksum: if the OS tampers with the
// swapped-out ciphertext, the enclave's checksum changes — the enclave
// can always detect interference with its swapped state. (A deployment
// would MAC the page; the checksum stands in.)
func TestSwapOutTamperDetectedByChecksum(t *testing.T) {
	w := newWorld(t, board.Config{})
	enc := w.build(t, kasm.SwapDemo())
	spare := uint32(enc.Spares[0])
	_, sum1, err := w.os.Enter(enc, 0, spare)
	if err != nil {
		t.Fatal(err)
	}
	// OS flips a bit in the swapped-out image.
	word, _ := w.os.ReadInsecure(enc.SharedPA[0]+16, 1)
	w.os.WriteInsecure(enc.SharedPA[0]+16, []uint32{word[0] ^ 0x80})
	_, sum2, err := w.os.Enter(enc, 1, spare)
	if err != nil {
		t.Fatal(err)
	}
	if sum2 == sum1 {
		t.Fatal("tampered swap image produced an unchanged checksum")
	}
}
