package monitor_test

import (
	"strings"
	"testing"

	"repro/internal/board"
	"repro/internal/kapi"
	"repro/internal/kasm"
	"repro/internal/monitor"
)

// TestExecBudgetExhaustion: an enclave that never yields hits the
// simulation's instruction budget — a simulator-level error, distinct from
// any architectural result (real hardware would run until an interrupt).
func TestExecBudgetExhaustion(t *testing.T) {
	w := newWorld(t, board.Config{Monitor: monitor.Config{ExecBudget: 10_000}})
	enc := w.build(t, kasm.SpinForever())
	_, _, err := w.os.Enter(enc)
	if err == nil {
		t.Fatal("runaway enclave did not trip the budget")
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestRunawayEnclaveIsInterruptible: the architectural answer to a spinning
// enclave is an interrupt — the OS regains control and may simply never
// resume.
func TestRunawayEnclaveIsInterruptible(t *testing.T) {
	w := newWorld(t, board.Config{})
	enc := w.build(t, kasm.SpinForever())
	w.plat.Machine.ScheduleIRQ(50_000)
	e, v, err := w.os.Enter(enc)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrInterrupted {
		t.Fatalf("spinning enclave: (%v, %d)", e, v)
	}
	// The OS declines to resume; it can even tear the enclave down.
	if _, _, err := w.chk.SMC(kapi.SMCStop, uint32(enc.AS)); err != nil {
		t.Fatal(err)
	}
}
