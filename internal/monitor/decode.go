package monitor

import (
	"fmt"

	"repro/internal/arm"
	"repro/internal/kapi"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/pagedb"
)

// DecodePageDB reconstructs the abstract PageDB from the monitor's
// concrete secure-memory representation. This is the refinement relation's
// abstraction function: "The implementation is free to choose its own
// in-memory representation of the PageDB, as long as it can prove that...
// the contents of registers and virtual memory match the abstract PageDB"
// (§5.2). The harness compares its output against the specification's
// predicted PageDB after every SMC.
func (k *Monitor) DecodePageDB() (*pagedb.DB, error) {
	d := pagedb.New(k.npages)
	for i := 0; i < k.npages; i++ {
		n := pagedb.PageNr(i)
		ct := k.rd(k.pdbAddr(n) + pdbOffType)
		owner := pagedb.PageNr(k.rd(k.pdbAddr(n) + pdbOffOwner))
		t := abstractType(ct)
		e := pagedb.Entry{Type: t, Owner: owner}
		switch t {
		case pagedb.TypeFree, pagedb.TypeSpare:
			// no payload
		case pagedb.TypeAddrspace:
			as, err := k.decodeAddrspace(n)
			if err != nil {
				return nil, err
			}
			e.AS = as
		case pagedb.TypeThread:
			e.Thread = k.decodeThread(n)
		case pagedb.TypeL1PT:
			l1, err := k.decodeL1(n)
			if err != nil {
				return nil, err
			}
			e.L1 = l1
		case pagedb.TypeL2PT:
			l2, err := k.decodeL2(n)
			if err != nil {
				return nil, err
			}
			e.L2 = l2
		case pagedb.TypeData:
			contents, err := k.m.Phys.ReadPage(k.physPage(n), mem.Secure)
			if err != nil {
				return nil, fmt.Errorf("monitor: decode data page %d: %w", n, err)
			}
			e.Data = &pagedb.Data{Contents: contents}
		}
		d.Pages[i] = e
	}
	return d, nil
}

func (k *Monitor) decodeAddrspace(n pagedb.PageNr) (*pagedb.Addrspace, error) {
	base := k.physPage(n)
	var st pagedb.ASState
	switch k.rd(base + asOffState) {
	case csInit:
		st = pagedb.ASInit
	case csFinal:
		st = pagedb.ASFinal
	case csStopped:
		st = pagedb.ASStopped
	default:
		return nil, fmt.Errorf("monitor: addrspace %d has undefined state %d", n, k.rd(base+asOffState))
	}
	as := &pagedb.Addrspace{
		State:    st,
		L1PT:     pagedb.PageNr(k.rd(base + asOffL1PT)),
		L1PTSet:  k.rd(base+asOffL1PTSet) != 0,
		RefCount: int(int32(k.rd(base + asOffRefCount))),
	}
	as.Measurement = *k.loadMeasurement(n)
	for i := 0; i < 8; i++ {
		as.Measured[i] = k.rd(base + asOffMeasured + uint32(i*4))
	}
	return as, nil
}

func (k *Monitor) decodeThread(n pagedb.PageNr) *pagedb.Thread {
	base := k.physPage(n)
	th := &pagedb.Thread{
		EntryPoint: k.rd(base + thOffEntry),
		Entered:    k.rd(base+thOffEntered) != 0,
	}
	for i := 0; i < 13; i++ {
		th.Ctx.R[i] = k.rd(base + thOffR0 + uint32(i*4))
	}
	th.Ctx.SP = k.rd(base + thOffSP)
	th.Ctx.LR = k.rd(base + thOffLR)
	th.Ctx.PC = k.rd(base + thOffPC)
	th.Ctx.CPSR = k.rd(base + thOffCPSR)
	th.Handler = k.rd(base + thOffHandler)
	th.InHandler = k.rd(base+thOffInHandler) != 0
	for i := 0; i < 8; i++ {
		th.VerifyData[i] = k.rd(base + thOffVerData + uint32(i*4))
		th.VerifyMeasure[i] = k.rd(base + thOffVerMeas + uint32(i*4))
	}
	return th
}

func (k *Monitor) decodeL1(n pagedb.PageNr) (*pagedb.L1PT, error) {
	base := k.physPage(n)
	l1 := &pagedb.L1PT{}
	for i := 0; i < mmu.L1Entries; i++ {
		e := k.rd(base + uint32(i*4))
		if e == 0 {
			continue
		}
		pg := k.pageNrOf(e &^ uint32(mem.PageSize-1))
		if pg < 0 {
			return nil, fmt.Errorf("monitor: L1PT %d slot %d points outside enclave pages: %#x", n, i, e)
		}
		l1.Present[i] = true
		l1.L2[i] = pagedb.PageNr(pg)
	}
	return l1, nil
}

func (k *Monitor) decodeL2(n pagedb.PageNr) (*pagedb.L2PT, error) {
	base := k.physPage(n)
	l2 := &pagedb.L2PT{}
	for i := 0; i < mmu.L2Entries; i++ {
		w := k.rd(base + uint32(i*4))
		pa, perms, valid := mmu.DecodePTE(w)
		if !valid {
			continue
		}
		entry := pagedb.L2Entry{Valid: true, Write: perms.Write, Exec: perms.Exec}
		if perms.NS {
			entry.Secure = false
			entry.InsecureAddr = pa
		} else {
			pg := k.pageNrOf(pa)
			if pg < 0 {
				return nil, fmt.Errorf("monitor: L2PT %d entry %d maps non-enclave secure page %#x", n, i, pa)
			}
			entry.Secure = true
			entry.Page = pagedb.PageNr(pg)
		}
		l2.Entries[i] = entry
	}
	return l2, nil
}

// SMC is the OS-side entry point: it simulates the normal world executing
// an SMC instruction (exception into monitor mode) and runs the handler.
// The machine must be executing in the normal world. Returns the error
// code and result value from R0/R1 after the handler's exception return.
//
// (The OS model issues calls through here; OS code running on the
// simulated CPU reaches the same handler via the SMC instruction and the
// TrapSMC path — see the nwos driver tests.)
func (k *Monitor) SMC(call uint32, args ...uint32) (kapi.Err, uint32, error) {
	m := k.m
	if m.World() != mem.Normal {
		return 0, 0, fmt.Errorf("monitor: SMC issued from secure world")
	}
	if !m.CPSR().Mode.Privileged() {
		return 0, 0, fmt.Errorf("monitor: SMC issued from user mode")
	}
	if len(args) > 4 {
		return 0, 0, fmt.Errorf("monitor: SMC takes at most 4 arguments")
	}
	m.SetReg(arm.R0, call)
	for i := 0; i < 4; i++ {
		var v uint32
		if i < len(args) {
			v = args[i]
		}
		m.SetReg(arm.Reg(1+i), v)
	}
	m.TakeException(arm.TrapSMC, m.PC())
	if err := k.HandleSMC(); err != nil {
		return 0, 0, err
	}
	return kapi.Err(m.Reg(arm.R0)), m.Reg(arm.R1), nil
}
