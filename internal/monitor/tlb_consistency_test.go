package monitor_test

// Tests that every monitor path rewriting page tables (or the PageDB that
// backs them) marks TLB consistency, and that enclave crossings restore
// it — the §5.1 obligation made observable through the TLB's flush/miss
// counters that the telemetry snapshot exports.

import (
	"testing"

	"repro/internal/board"
	"repro/internal/kapi"
	"repro/internal/kasm"
	"repro/internal/monitor"
)

// TestPageTableSMCsMarkTLBInconsistent walks the static build sequence one
// SMC at a time. Before each call the TLB is flushed (consistent); after
// each call it must be inconsistent, because every one of these calls
// either stores into a live page table (InitL2PTable, MapSecure,
// MapInsecure) or changes the allocation state backing one (the pdSet
// conservative invalidation).
func TestPageTableSMCsMarkTLBInconsistent(t *testing.T) {
	w := newWorld(t, board.Config{})
	asPg, _ := w.os.AllocPage()
	l1Pg, _ := w.os.AllocPage()
	l2Pg, _ := w.os.AllocPage()
	dataPg, _ := w.os.AllocPage()
	thrPg, _ := w.os.AllocPage()
	insecure := w.plat.Machine.Phys.Layout().InsecureBase
	m := kapi.NewMapping(0x1000, true, false)

	steps := []struct {
		name string
		call uint32
		args []uint32
	}{
		{"InitAddrspace", kapi.SMCInitAddrspace, []uint32{uint32(asPg), uint32(l1Pg)}},
		{"InitL2PTable", kapi.SMCInitL2PTable, []uint32{uint32(asPg), uint32(l2Pg), 0}},
		{"MapSecure", kapi.SMCMapSecure, []uint32{uint32(asPg), uint32(dataPg), uint32(m), insecure}},
		{"MapInsecure", kapi.SMCMapInsecure, []uint32{uint32(asPg), uint32(kapi.NewMapping(0x2000, true, false)), insecure}},
		{"InitThread", kapi.SMCInitThread, []uint32{uint32(asPg), uint32(thrPg), 0}},
	}
	tlb := w.plat.Machine.TLB
	for _, s := range steps {
		tlb.Flush()
		if !tlb.Consistent() {
			t.Fatalf("%s: TLB not consistent after flush", s.name)
		}
		e, _, err := w.chk.SMC(s.call, s.args...)
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		if e != kapi.ErrSuccess {
			t.Fatalf("%s: %v", s.name, e)
		}
		if tlb.Consistent() {
			t.Errorf("%s left the TLB marked consistent after rewriting page-table state", s.name)
		}
	}
}

// TestEnterRestoresTLBConsistency: after a build (page tables freshly
// written, TLB inconsistent) a full Enter+Exit crossing must leave the TLB
// consistent again — the unoptimised monitor flushes on entry and on exit.
func TestEnterRestoresTLBConsistency(t *testing.T) {
	w := newWorld(t, board.Config{})
	enc := w.build(t, kasm.ExitConst(7))
	tlb := w.plat.Machine.TLB
	if tlb.Consistent() {
		t.Fatal("TLB consistent right after build — no page-table store was noted")
	}
	before := tlb.Counters()
	e, v, err := w.os.Enter(enc)
	if err != nil || e != kapi.ErrSuccess || v != 7 {
		t.Fatalf("Enter: (%v, %d, %v)", e, v, err)
	}
	after := tlb.Counters()
	if !tlb.Consistent() {
		t.Fatal("TLB inconsistent after a full crossing")
	}
	if got := after.Flushes - before.Flushes; got != 2 {
		t.Errorf("crossing performed %d flushes, want 2 (entry + exit)", got)
	}
	// The entry flush emptied the TLB, so the enclave's first fetch
	// missed and walked; misses move in lockstep with fills here.
	if after.Misses == before.Misses {
		t.Error("no TLB misses recorded for a cold crossing")
	}
	if after.Fills == before.Fills {
		t.Error("no TLB fills recorded for a cold crossing")
	}
}

// TestCrossingFlushDiscipline pins the flush counters of both monitor
// configurations: the unoptimised monitor flushes twice per crossing
// (every entry, every exit, §8.1), while the optimised one flushes only
// when consistency was actually lost — zero flushes and zero misses on a
// warm repeat crossing.
func TestCrossingFlushDiscipline(t *testing.T) {
	const repeats = 5
	for _, opt := range []bool{false, true} {
		name := "unoptimised"
		if opt {
			name = "optimised"
		}
		t.Run(name, func(t *testing.T) {
			w := newWorld(t, board.Config{Monitor: monitor.Config{Optimised: opt}})
			enc := w.build(t, kasm.ExitConst(3))
			// Warm-up crossing: pays the cold flush either way.
			if e, _, err := w.os.Enter(enc); err != nil || e != kapi.ErrSuccess {
				t.Fatalf("warm-up Enter: (%v, %v)", e, err)
			}
			tlb := w.plat.Machine.TLB
			before := tlb.Counters()
			for i := 0; i < repeats; i++ {
				if e, _, err := w.os.Enter(enc); err != nil || e != kapi.ErrSuccess {
					t.Fatalf("repeat Enter %d: (%v, %v)", i, e, err)
				}
			}
			after := tlb.Counters()
			flushes := after.Flushes - before.Flushes
			misses := after.Misses - before.Misses
			if opt {
				if flushes != 0 {
					t.Errorf("optimised repeat crossings flushed %d times, want 0", flushes)
				}
				if misses != 0 {
					t.Errorf("optimised repeat crossings missed %d times, want 0 (warm TLB)", misses)
				}
			} else {
				if flushes != 2*repeats {
					t.Errorf("unoptimised crossings flushed %d times, want %d", flushes, 2*repeats)
				}
				if misses == 0 {
					t.Error("unoptimised repeat crossings recorded no misses despite per-crossing flushes")
				}
			}
		})
	}
}

// TestOptimisedFlushAfterInterveningPTWrite: the optimised fast path may
// skip the entry flush only while Consistent() holds. Any page-table
// activity between crossings (here: building a second enclave) must force
// exactly one flush on the next entry, after which repeats are again
// flush-free.
func TestOptimisedFlushAfterInterveningPTWrite(t *testing.T) {
	w := newWorld(t, board.Config{Monitor: monitor.Config{Optimised: true}})
	enc := w.build(t, kasm.ExitConst(1))
	if e, _, err := w.os.Enter(enc); err != nil || e != kapi.ErrSuccess {
		t.Fatalf("warm-up Enter: (%v, %v)", e, err)
	}
	tlb := w.plat.Machine.TLB
	if !tlb.Consistent() {
		t.Fatal("TLB inconsistent after optimised crossing with no intervening writes")
	}

	// Intervening page-table work invalidates the fast path.
	w.build(t, kasm.ExitConst(2))
	if tlb.Consistent() {
		t.Fatal("building a second enclave did not mark the TLB inconsistent")
	}
	before := tlb.Counters()
	if e, _, err := w.os.Enter(enc); err != nil || e != kapi.ErrSuccess {
		t.Fatalf("Enter after PT write: (%v, %v)", e, err)
	}
	mid := tlb.Counters()
	if got := mid.Flushes - before.Flushes; got != 1 {
		t.Errorf("entry after PT write flushed %d times, want exactly 1", got)
	}
	// Consistency restored: the fast path applies again.
	if e, _, err := w.os.Enter(enc); err != nil || e != kapi.ErrSuccess {
		t.Fatalf("repeat Enter: (%v, %v)", e, err)
	}
	after := tlb.Counters()
	if got := after.Flushes - mid.Flushes; got != 0 {
		t.Errorf("repeat after restored consistency flushed %d times, want 0", got)
	}
}
