package monitor_test

import (
	"testing"

	"repro/internal/board"
	"repro/internal/kapi"
	"repro/internal/kasm"
	"repro/internal/monitor"
)

// Tests for the §8.1 crossing optimisations (skip TLB flush on repeated
// same-enclave invocation; lazy banked-register accounting). The paper
// defers these pending proof; here the refinement and behaviour tests are
// that proof's analogue, so every test in this file runs the optimised
// monitor under the refinement checker.

func optimisedWorld(t *testing.T) *world {
	t.Helper()
	return newWorld(t, board.Config{Monitor: monitor.Config{Optimised: true}})
}

func TestOptimisedBasicLifecycle(t *testing.T) {
	w := optimisedWorld(t)
	enc := w.build(t, kasm.AddArgs())
	for i := uint32(0); i < 4; i++ {
		e, v, err := w.os.Enter(enc, i, 1)
		if err != nil {
			t.Fatal(err)
		}
		if e != kapi.ErrSuccess || v != i+1 {
			t.Fatalf("crossing %d: (%v, %d)", i, e, v)
		}
	}
}

func TestOptimisedRepeatCrossingCheaper(t *testing.T) {
	measure := func(opt bool) (first, repeat uint64) {
		w := newWorld(t, board.Config{Monitor: monitor.Config{Optimised: opt}})
		enc := w.build(t, kasm.ExitConst(0))
		cross := func() uint64 {
			start := w.plat.Machine.Cyc.Total()
			if _, _, err := w.os.Enter(enc); err != nil {
				t.Fatal(err)
			}
			return w.plat.Machine.Cyc.Total() - start
		}
		// Note: the refinement checker's decode reads charge cycles too,
		// but equally in both configurations, so the comparison holds.
		first = cross()
		repeat = cross()
		return
	}
	_, repUnopt := measure(false)
	_, repOpt := measure(true)
	if repOpt >= repUnopt {
		t.Fatalf("optimised repeat crossing (%d) not cheaper than unoptimised (%d)", repOpt, repUnopt)
	}
}

func TestOptimisedUnmapStillFaults(t *testing.T) {
	// The dynamic-memory SVCs flush explicitly; the optimisation must not
	// let a stale mapping survive an UnmapData.
	w := optimisedWorld(t)
	enc := w.build(t, kasm.DynUnmap())
	e, v, err := w.os.Enter(enc, uint32(enc.Spares[0]))
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrFault || v != kapi.ExitDataAbort {
		t.Fatalf("after unmap under optimised crossing: (%v, %d)", e, v)
	}
}

func TestOptimisedPageReuseIsClean(t *testing.T) {
	// The soundness hazard the skip-flush fast path must handle: enclave
	// A runs and exits (no flush); its pages are freed and reused by
	// enclave B. B must see its own world, never A's stale translations.
	w := optimisedWorld(t)
	a := w.build(t, kasm.StoreLoad())
	if _, _, err := w.os.Enter(a); err != nil {
		t.Fatal(err)
	}
	if err := w.os.Destroy(a); err != nil {
		t.Fatal(err)
	}
	// B reuses the same page numbers (the OS allocator is first-fit).
	b := w.build(t, kasm.ExitConst(0x77))
	e, v, err := w.os.Enter(b)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrSuccess || v != 0x77 {
		t.Fatalf("reused-page enclave: (%v, %#x)", e, v)
	}
}

func TestOptimisedAlternatingEnclaves(t *testing.T) {
	// Alternating between two enclaves defeats the fast path (different
	// TTBR0) but must stay correct.
	w := optimisedWorld(t)
	a := w.build(t, kasm.ExitConst(1))
	b := w.build(t, kasm.ExitConst(2))
	for i := 0; i < 3; i++ {
		if _, v, err := w.os.Enter(a); err != nil || v != 1 {
			t.Fatal(err, v)
		}
		if _, v, err := w.os.Enter(b); err != nil || v != 2 {
			t.Fatal(err, v)
		}
	}
}

func TestOptimisedInterruptResume(t *testing.T) {
	w := optimisedWorld(t)
	enc := w.build(t, kasm.CountTo())
	w.plat.Machine.ScheduleIRQ(2000)
	e, _, err := w.os.Enter(enc, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrInterrupted {
		t.Fatalf("suspend: %v", e)
	}
	e, v, err := w.os.Resume(enc)
	if err != nil {
		t.Fatal(err)
	}
	if e != kapi.ErrSuccess || v != 100_000 {
		t.Fatalf("resume: (%v, %d)", e, v)
	}
}
