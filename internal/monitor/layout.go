// Package monitor is the concrete Komodo monitor: the implementation the
// paper writes in verified ARM assembly (§7), here as Go code operating on
// the concrete machine state of the simulated platform. Unlike the
// functional specification (internal/spec), which computes over the
// abstract PageDB, the monitor:
//
//   - keeps the PageDB as words in secure RAM (a global type/owner table
//     plus per-page payloads stored inside the pages themselves, as the
//     prototype does);
//   - writes real hardware-format page tables that the simulated MMU
//     walks, and keeps TLB consistency by flushing before enclave entry
//     and after SVCs that edit live tables;
//   - saves and restores register state through the machine's banked
//     register file, and enters enclaves with the architectural
//     MOVS PC, LR sequence (§7.2);
//   - charges the cycle costs of Table 3's operations.
//
// The refinement harness decodes the monitor's secure memory back into an
// abstract PageDB after every SMC and compares against the specification —
// the runtime analogue of the paper's proof that the implementation
// satisfies the spec.
package monitor

import (
	"repro/internal/mem"
	"repro/internal/pagedb"
)

// Secure-region layout. The bootloader reserves the first pages of secure
// RAM for the monitor itself (Figure 4: monitor data lives in the secure
// region alongside enclave pages):
//
//	secure page 0: PageDB global table — 2 words per enclave page
//	               (type, owner), 256 entries max.
//	secure page 1: monitor globals — attestation key, page count.
//	secure page 2..: enclave pages, numbered from PageNr 0.
const (
	// ReservedPages is the number of secure pages the monitor keeps for
	// itself; they are invisible to the PageDB.
	ReservedPages = 2

	pdbPage     = 0 // secure page index of the PageDB table
	globalsPage = 1 // secure page index of the globals page

	// PageDB table entry: 2 words per page.
	pdbEntryWords = 2
	pdbOffType    = 0
	pdbOffOwner   = 4

	// Globals page offsets (bytes).
	gOffNPages    = 0
	gOffAttestKey = 32 // 8 words
	gOffSealRoot  = 64 // 8 words: sealing root (docs/SEALING.md)

	// Concrete page-type encodings stored in the PageDB table.
	ctFree      = 0
	ctAddrspace = 1
	ctThread    = 2
	ctL1PT      = 3
	ctL2PT      = 4
	ctData      = 5
	ctSpare     = 6
)

// Addrspace page payload offsets (bytes within the addrspace page).
const (
	asOffState    = 0
	asOffL1PT     = 4
	asOffL1PTSet  = 8
	asOffRefCount = 12
	asOffMeasured = 32  // 8 words: final measurement
	asOffHashH    = 64  // 8 words: running SHA-256 chaining state
	asOffHashNbuf = 96  // buffered byte count
	asOffHashLenL = 100 // low word of byte length
	asOffHashLenH = 104 // high word of byte length
	asOffHashBuf  = 128 // 64-byte partial block buffer (16 words)
)

// Thread page payload offsets (bytes within the thread page).
const (
	thOffEntry     = 0
	thOffEntered   = 4
	thOffR0        = 8   // R0..R12: 13 words
	thOffSP        = 60  // user-banked SP
	thOffLR        = 64  // user-banked LR
	thOffPC        = 68  // saved PC
	thOffCPSR      = 72  // saved flags (PSR word encoding)
	thOffHandler   = 76  // registered fault-upcall address (§9.2 extension)
	thOffInHandler = 80  // executing the fault handler
	thOffVerData   = 96  // 8 words: staged attestation data
	thOffVerMeas   = 128 // 8 words: staged measurement
)

// Concrete addrspace state encodings.
const (
	csInit    = 0
	csFinal   = 1
	csStopped = 2
)

func concreteType(t pagedb.PageType) uint32 {
	switch t {
	case pagedb.TypeAddrspace:
		return ctAddrspace
	case pagedb.TypeThread:
		return ctThread
	case pagedb.TypeL1PT:
		return ctL1PT
	case pagedb.TypeL2PT:
		return ctL2PT
	case pagedb.TypeData:
		return ctData
	case pagedb.TypeSpare:
		return ctSpare
	default:
		return ctFree
	}
}

func abstractType(ct uint32) pagedb.PageType {
	switch ct {
	case ctAddrspace:
		return pagedb.TypeAddrspace
	case ctThread:
		return pagedb.TypeThread
	case ctL1PT:
		return pagedb.TypeL1PT
	case ctL2PT:
		return pagedb.TypeL2PT
	case ctData:
		return pagedb.TypeData
	case ctSpare:
		return pagedb.TypeSpare
	default:
		return pagedb.TypeFree
	}
}

// physPage returns the physical base address of PageNr n (enclave pages
// start after the reserved monitor pages).
func (k *Monitor) physPage(n pagedb.PageNr) uint32 {
	return k.m.Phys.SecurePageBase(int(n) + ReservedPages)
}

// pageNrOf maps a secure physical page base back to a PageNr, or -1.
func (k *Monitor) pageNrOf(base uint32) int {
	idx := k.m.Phys.SecurePageIndex(base)
	if idx < ReservedPages {
		return -1
	}
	n := idx - ReservedPages
	if n >= k.npages {
		return -1
	}
	return n
}

// pdbAddr returns the address of the PageDB table slot for page n.
func (k *Monitor) pdbAddr(n pagedb.PageNr) uint32 {
	return k.m.Phys.SecurePageBase(pdbPage) + uint32(n)*pdbEntryWords*mem.WordSize
}

func (k *Monitor) globalsAddr(off uint32) uint32 {
	return k.m.Phys.SecurePageBase(globalsPage) + off
}
