package monitor

import (
	"fmt"

	"repro/internal/arm"
	"repro/internal/cycles"
	"repro/internal/kapi"
	"repro/internal/mem"
	"repro/internal/pagedb"
	"repro/internal/spec"
)

// smcEnter implements Enter and Resume: the only SMCs involving enclave
// execution. It realises the state machine of the paper's Figure 3: enter
// user mode with MOVS PC, LR from a highly constrained state (page-table
// base loaded, TLB consistent, registers loaded from the thread context),
// then loop — handle SVCs and re-enter, until an exit, interrupt, or fault
// transfers control back to the OS.
func (k *Monitor) smcEnter(thrPg, a1, a2, a3 uint32, resume bool) (kapi.Err, uint32, error) {
	m := k.m

	// Validation (same order as spec.ValidateEnter/ValidateResume).
	if !k.validPage(thrPg) {
		e, v := err1(kapi.ErrInvalidPageNo)
		return e, v, nil
	}
	th := pagedb.PageNr(thrPg)
	if k.pdType(th) != ctThread {
		e, v := err1(kapi.ErrNotThread)
		return e, v, nil
	}
	as := k.pdOwner(th)
	if k.asState(as) != csFinal {
		e, v := err1(kapi.ErrNotFinal)
		return e, v, nil
	}
	entered := k.thEntered(th)
	if resume && !entered {
		e, v := err1(kapi.ErrNotEntered)
		return e, v, nil
	}
	if !resume && entered {
		e, v := err1(kapi.ErrAlreadyEntered)
		return e, v, nil
	}

	// Save the full normal-world context the enclave must not observe or
	// influence: the OS's view of every banked register is restored on
	// exit (§8.1: the unoptimised prototype "saves and restores every
	// banked register").
	osCtx := k.saveOSContext()
	if !k.optimised {
		m.Cyc.Charge(cycles.BankedRegSave)
	}

	// Constrain the machine exactly as the specification demands at user
	// entry (§5.2): secure world (SCR.NS = 0 — enclaves run in secure
	// user mode, Figure 1), enclave page table in TTBR0, consistent TLB,
	// register file loaded from the PageDB.
	m.SetSCRNS(false)
	l1, _ := k.asL1PT(as)
	l1Base := k.physPage(l1)
	if k.optimised && m.TTBR0(mem.Secure) == l1Base && m.TLB.Consistent() {
		// §8.1 optimisation: repeated invocation of the same enclave with
		// untouched page tables needs no flush (the correctness argument
		// is exactly the TLB-consistency obligation of §5.1: every cached
		// translation still matches the tables).
		m.SetPageTablePages(k.pageTablePages(as))
	} else {
		m.SetTTBR0(mem.Secure, l1Base)
		m.SetPageTablePages(k.pageTablePages(as))
		m.TLB.Flush()
		m.Cyc.Charge(cycles.TLBFlush)
	}

	if resume {
		// Resume leaves the thread suspended=false once running again.
		k.thSetEntered(th, false)
		k.loadUserCtx(th)
		m.Cyc.Charge(cycles.CtxRestore)
	} else {
		// Entry: PC at the entry point, parameters in R0–R2, every other
		// user register zeroed.
		for r := arm.R0; r <= arm.R12; r++ {
			m.SetReg(r, 0)
		}
		m.SetReg(arm.R0, a1)
		m.SetReg(arm.R1, a2)
		m.SetReg(arm.R2, a3)
		m.SetRegBanked(arm.ModeUsr, arm.SP, 0)
		m.SetRegBanked(arm.ModeUsr, arm.LR, 0)
		m.SetSPSR(arm.ModeMon, arm.PSR{Mode: arm.ModeUsr}) // interrupts enabled
		m.SetRegBanked(arm.ModeMon, arm.LR, k.thEntry(th))
		m.Cyc.Charge(cycles.UserRegLoad)
		m.ExceptionReturn() // MOVS PC, LR into secure user mode
	}

	// Probe for the Table 3 "Enter only"/"Resume only" rows: everything
	// up to here is the cost of reaching the first enclave instruction.
	k.LastEnterSetup = m.Cyc.Total() - k.smcStartCyc
	k.tel.ObserveEnterSetup(resume, k.LastEnterSetup)

	// The enclave-execution loop ("while (!done) { MOVS_PC_LR(); }",
	// §7.2 — ours is structured, the prototype's used the SP low bit).
	for {
		tr := m.Run(k.ExecBudget)
		switch tr.Kind {
		case arm.TrapSVC:
			call := m.Reg(arm.R0)
			if call == kapi.SVCExit {
				retval := m.Reg(arm.R1)
				k.tel.ObserveSVC(call, uint32(kapi.ErrSuccess), 0)
				k.recordEvent(spec.ExecEvent{Kind: spec.EventExit, ExitVal: retval})
				// "the enclave's registers are not saved, permitting it
				// to be re-entered" (§4).
				k.restoreOSContext(osCtx)
				return kapi.ErrSuccess, retval, nil
			}
			if call == kapi.SVCFaultReturn && k.thInHandler(th) {
				// Dispatcher extension: resume the context interrupted by
				// the handled fault. (Outside a handler, the call falls
				// through to the generic dispatch and is rejected.)
				k.tel.ObserveSVC(call, uint32(kapi.ErrSuccess), 0)
				k.thSetInHandler(th, false)
				k.recordEvent(spec.ExecEvent{
					Kind: spec.EventSVC, Call: call,
					Args: k.readSVCArgs(), Res: kapi.ErrSuccess,
				})
				// The return path runs from monitor mode, like Resume.
				cp := m.CPSR()
				cp.Mode = arm.ModeMon
				m.SetCPSR(cp)
				k.loadUserCtx(th) // restores registers and MOVS back
				m.Cyc.Charge(cycles.CtxRestore)
				continue
			}
			var args [8]uint32
			for i := 0; i < 8; i++ {
				args[i] = m.Reg(arm.Reg(1 + i))
			}
			svcStart := m.Cyc.Total()
			errc, vals := k.dispatchSVC(th, as, call, args)
			k.tel.ObserveSVC(call, uint32(errc), m.Cyc.Total()-svcStart)
			k.recordEvent(spec.ExecEvent{Kind: spec.EventSVC, Call: call, Args: args, Res: errc, Vals: vals})
			m.SetReg(arm.R0, uint32(errc))
			for i := 0; i < 8; i++ {
				m.SetReg(arm.Reg(1+i), vals[i])
			}
			m.Cyc.Charge(cycles.EretToUser)
			m.ExceptionReturn() // back into the enclave

		case arm.TrapIRQ, arm.TrapFIQ:
			// Suspend: save user context in the thread page and mark it
			// entered (§4).
			k.saveUserCtx(th)
			k.thSetEntered(th, true)
			m.Cyc.Charge(cycles.UserRegSave)
			exit := kapi.ExitIRQ
			kind := spec.EventIRQ
			if tr.Kind == arm.TrapFIQ {
				exit = kapi.ExitFIQ
				kind = spec.EventFIQ
			}
			k.recordEvent(spec.ExecEvent{Kind: kind})
			k.restoreOSContext(osCtx)
			return kapi.ErrInterrupted, exit, nil

		case arm.TrapDataAbort, arm.TrapPrefetchAbort, arm.TrapUndef:
			var exit uint32
			switch tr.Kind {
			case arm.TrapDataAbort:
				exit = kapi.ExitDataAbort
			case arm.TrapPrefetchAbort:
				exit = kapi.ExitPrefAbort
			default:
				exit = kapi.ExitUndef
			}
			// Dispatcher extension (§9.2): a registered fault handler
			// receives the exception as a user-mode upcall — the fault is
			// never exposed to the untrusted OS. A fault while already in
			// the handler is terminal (no livelock).
			if handler := k.thHandler(th); handler != 0 && !k.thInHandler(th) {
				k.saveUserCtx(th) // interrupted context, incl. the fault PC
				k.thSetInHandler(th, true)
				m.Cyc.Charge(cycles.UserRegSave)
				k.recordEvent(spec.ExecEvent{Kind: spec.EventFaultHandled, FaultType: exit})
				// Upcall register state: exception type and faulting
				// address (the enclave's own information), user SP
				// preserved for the handler's stack, everything else
				// cleared.
				for r := arm.R0; r <= arm.R12; r++ {
					m.SetReg(r, 0)
				}
				m.SetReg(arm.R0, exit)
				m.SetReg(arm.R1, tr.FaultAddr)
				m.SetSPSR(arm.ModeMon, arm.PSR{Mode: arm.ModeUsr})
				m.SetRegBanked(arm.ModeMon, arm.LR, handler)
				cp := m.CPSR()
				cp.Mode = arm.ModeMon
				m.SetCPSR(cp)
				m.Cyc.Charge(cycles.EretToUser)
				m.ExceptionReturn()
				continue
			}
			// No handler: "the thread simply exits with an error code
			// (but no other information, to avoid side-channel leaks)"
			// (§4). The monitor must not forward the faulting address.
			k.thSetEntered(th, false)
			k.recordEvent(spec.ExecEvent{Kind: spec.EventFault, FaultType: exit})
			k.restoreOSContext(osCtx)
			return kapi.ErrFault, exit, nil

		case arm.TrapBudget:
			k.restoreOSContext(osCtx)
			return 0, 0, fmt.Errorf("monitor: enclave exceeded execution budget of %d instructions", k.ExecBudget)

		default:
			k.restoreOSContext(osCtx)
			return 0, 0, fmt.Errorf("monitor: unexpected trap %v during enclave execution", tr.Kind)
		}
	}
}

func (k *Monitor) recordEvent(ev spec.ExecEvent) {
	if k.recording {
		k.trace = append(k.trace, ev)
	}
}

// osContext is the normal-world register state saved across enclave
// execution.
type osContext struct {
	r       [13]uint32
	banked  map[arm.Mode][2]uint32 // SP, LR per mode
	spsr    map[arm.Mode]arm.PSR
	monLR   uint32
	monSP   uint32
	monSPSR arm.PSR
	ttbr0N  uint32
}

var bankedModes = []arm.Mode{arm.ModeUsr, arm.ModeSvc, arm.ModeAbt, arm.ModeUnd, arm.ModeIrq, arm.ModeFiq}

func (k *Monitor) saveOSContext() *osContext {
	m := k.m
	c := &osContext{
		banked:  make(map[arm.Mode][2]uint32),
		spsr:    make(map[arm.Mode]arm.PSR),
		monLR:   m.RegBanked(arm.ModeMon, arm.LR),
		monSP:   m.RegBanked(arm.ModeMon, arm.SP),
		monSPSR: m.SPSR(arm.ModeMon),
		ttbr0N:  m.TTBR0(mem.Normal),
	}
	for i := range c.r {
		c.r[i] = m.Reg(arm.Reg(i))
	}
	for _, md := range bankedModes {
		c.banked[md] = [2]uint32{m.RegBanked(md, arm.SP), m.RegBanked(md, arm.LR)}
		if md != arm.ModeUsr {
			c.spsr[md] = m.SPSR(md)
		}
	}
	return c
}

// restoreOSContext puts the machine back in monitor mode with the OS's
// registers intact, ready for HandleSMC's result write-back and exception
// return. User-visible registers the enclave wrote are cleared here and
// rewritten by HandleSMC — nothing of the enclave's register state
// survives into the OS's view (the confidentiality obligation of §6.1).
func (k *Monitor) restoreOSContext(c *osContext) {
	m := k.m
	cp := m.CPSR()
	cp.Mode = arm.ModeMon
	cp.I = true
	m.SetCPSR(cp)
	// World switch back: the exception return from monitor mode lands in
	// the normal world.
	m.SetSCRNS(true)
	for i := range c.r {
		m.SetReg(arm.Reg(i), c.r[i])
	}
	for _, md := range bankedModes {
		m.SetRegBanked(md, arm.SP, c.banked[md][0])
		m.SetRegBanked(md, arm.LR, c.banked[md][1])
		if md != arm.ModeUsr {
			m.SetSPSR(md, c.spsr[md])
		}
	}
	m.SetRegBanked(arm.ModeMon, arm.LR, c.monLR)
	m.SetRegBanked(arm.ModeMon, arm.SP, c.monSP)
	m.SetSPSR(arm.ModeMon, c.monSPSR)
	// Restoring the normal-world TTBR0 bank must not disturb the secure
	// bank, whose value the optimised fast path compares on re-entry;
	// SetTTBR0 would also mark the TLB inconsistent, so write the bank
	// only if it changed (the OS model never loads it).
	if m.TTBR0(mem.Normal) != c.ttbr0N {
		m.SetTTBR0(mem.Normal, c.ttbr0N)
	}
	m.SetPageTablePages(nil)
	if k.optimised {
		// Keep the departing enclave's translations cached: the entry
		// fast path re-validates them via TTBR0 + TLB consistency. The
		// normal world runs untranslated, so they are unreachable there.
		return
	}
	// Flush translations of the departing enclave so nothing lingers for
	// the next one (the unoptimised prototype flushes on every crossing,
	// §8.1).
	m.TLB.Flush()
	m.Cyc.Charge(cycles.BankedRegSave)
}

// saveUserCtx stores the user-visible register context into the thread
// page (interrupt suspension).
func (k *Monitor) saveUserCtx(th pagedb.PageNr) {
	m := k.m
	base := k.physPage(th)
	for i := 0; i < 13; i++ {
		k.wr(base+thOffR0+uint32(i*4), m.Reg(arm.Reg(i)))
	}
	k.wr(base+thOffSP, m.RegBanked(arm.ModeUsr, arm.SP))
	k.wr(base+thOffLR, m.RegBanked(arm.ModeUsr, arm.LR))
	// The pre-exception PC was preserved in the banked LR of the mode the
	// interrupt was taken to (§5.1).
	k.wr(base+thOffPC, m.RegBanked(m.CPSR().Mode, arm.LR))
	k.wr(base+thOffCPSR, encodeFlags(m.SPSR(m.CPSR().Mode)))
}

// loadUserCtx restores a suspended thread's context and performs the
// exception return into user mode.
func (k *Monitor) loadUserCtx(th pagedb.PageNr) {
	m := k.m
	base := k.physPage(th)
	for i := 0; i < 13; i++ {
		m.SetReg(arm.Reg(i), k.rd(base+thOffR0+uint32(i*4)))
	}
	m.SetRegBanked(arm.ModeUsr, arm.SP, k.rd(base+thOffSP))
	m.SetRegBanked(arm.ModeUsr, arm.LR, k.rd(base+thOffLR))
	psr := decodeFlags(k.rd(base + thOffCPSR))
	psr.Mode = arm.ModeUsr
	psr.I = false
	m.SetSPSR(arm.ModeMon, psr)
	m.SetRegBanked(arm.ModeMon, arm.LR, k.rd(base+thOffPC))
	m.ExceptionReturn()
}

// encodeFlags/decodeFlags pack the NZCV condition flags into the PSR word
// encoding used in the thread page.
func encodeFlags(p arm.PSR) uint32 {
	var v uint32
	if p.N {
		v |= 1 << 31
	}
	if p.Z {
		v |= 1 << 30
	}
	if p.C {
		v |= 1 << 29
	}
	if p.V {
		v |= 1 << 28
	}
	return v
}

func decodeFlags(v uint32) arm.PSR {
	return arm.PSR{
		N: v&(1<<31) != 0,
		Z: v&(1<<30) != 0,
		C: v&(1<<29) != 0,
		V: v&(1<<28) != 0,
	}
}

// pageTablePages collects the physical pages of an address space's page
// tables, so user-mode stores to them (impossible under the invariants,
// but modelled) mark the TLB inconsistent.
func (k *Monitor) pageTablePages(as pagedb.PageNr) map[uint32]bool {
	out := make(map[uint32]bool)
	l1, set := k.asL1PT(as)
	if !set {
		return out
	}
	l1Base := k.physPage(l1)
	out[l1Base] = true
	for i := 0; i < 256; i++ {
		e := k.rd(l1Base + uint32(i*4))
		if e&1 != 0 {
			out[e&^uint32(mem.PageSize-1)] = true
		}
	}
	return out
}
