package monitor

// Sealed-storage SMCs (docs/SEALING.md): Checkpoint serialises a
// finalised or stopped enclave into a sealed blob written to insecure
// memory; Restore validates and re-instantiates such a blob onto
// OS-donated free pages. The sealing key is derived from the monitor's
// seal root and the enclave's measurement, so blobs migrate between
// boards exactly when both monitors share a boot secret — and never
// open under a different measurement.
//
// Validation order in each call mirrors the specification exactly
// (internal/spec/seal.go); that order is part of the spec.

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/kapi"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/pagedb"
	"repro/internal/seal"
	"repro/internal/sha2"
	"repro/internal/telemetry"
)

// insecureWindowOK extends insecureOK over a window of whole pages
// covering `words` words starting at pa (which must be page-aligned).
func (k *Monitor) insecureWindowOK(pa, words uint32) bool {
	bytes := uint64(words) * 4
	if uint64(pa)+bytes > 1<<32 {
		return false
	}
	for off := uint64(0); off < bytes; off += mem.PageSize {
		if !k.insecureOK(pa + uint32(off)) {
			return false
		}
	}
	return true
}

// chargeSealCycles models the cost of one seal/unseal pass: key
// derivation plus the AEAD's HMAC invocations, linear in blob size.
func (k *Monitor) chargeSealCycles(blobWords int) {
	ksBlocks := uint64((blobWords + 7) / 8)
	k.m.Cyc.Charge(cycles.HMACFixed*4 +
		cycles.SHABlock*(sha2.HMACBlocks(blobWords*4)+ksBlocks))
}

func (k *Monitor) smcCheckpoint(asPg, destPA, maxWords uint32) (kapi.Err, uint32, error) {
	if e := k.checkAddrspace(asPg); e != kapi.ErrSuccess {
		return e, 0, nil
	}
	as := pagedb.PageNr(asPg)
	if st := k.asState(as); st != csFinal && st != csStopped {
		return kapi.ErrNotFinal, 0, nil
	}
	if maxWords == 0 || maxWords > seal.MaxPayloadWords {
		return kapi.ErrInvalidArg, 0, nil
	}
	if destPA%mem.PageSize != 0 || !k.insecureWindowOK(destPA, maxWords) {
		return kapi.ErrInsecureInvalid, 0, nil
	}

	// Image the enclave from the abstraction of current secure memory —
	// the same encoding the spec computes over its abstract PageDB.
	d, err := k.DecodePageDB()
	if err != nil {
		return 0, 0, err
	}
	payload, perr := seal.EncodeEnclave(d, as)
	if perr != nil {
		return kapi.ErrInvalidArg, 0, nil
	}
	blobLen := uint32(len(payload)) + seal.OverheadWords
	if blobLen > maxWords {
		return kapi.ErrInvalidArg, 0, nil
	}

	// Draw the nonce only after every validation has passed, so the
	// spec's RNG replay consumes the draws at the same point.
	n0, n1 := k.m.RNG.Word(), k.m.RNG.Word()
	k.m.Cyc.Charge(cycles.RNGWord * 2)
	k.rngTrace = append(k.rngTrace, n0, n1)

	measured := k.asMeasured(as)
	key := seal.DeriveKey(k.sealRoot, measured)
	blob := seal.Seal(key, [2]uint32{n0, n1}, seal.KindCheckpoint, measured, payload)
	k.chargeSealCycles(len(blob))
	for i, w := range blob {
		if err := k.m.Phys.Write(destPA+uint32(i*4), w, mem.Secure); err != nil {
			panic(fmt.Sprintf("monitor: checkpoint blob write: %v", err))
		}
	}
	k.m.Cyc.Charge(cycles.WordWrite * uint64(len(blob)))
	return kapi.ErrSuccess, blobLen, nil
}

func (k *Monitor) smcRestore(srcPA, srcWords, listPA, nPages uint32) (kapi.Err, uint32, error) {
	if srcWords == 0 || srcWords > seal.MaxPayloadWords+seal.OverheadWords {
		return kapi.ErrInvalidArg, 0, nil
	}
	if srcPA%mem.PageSize != 0 || !k.insecureWindowOK(srcPA, srcWords) {
		return kapi.ErrInsecureInvalid, 0, nil
	}
	if nPages == 0 || nPages > mem.PageWords {
		return kapi.ErrInvalidArg, 0, nil
	}
	if listPA%mem.PageSize != 0 || !k.insecureWindowOK(listPA, nPages) {
		return kapi.ErrInsecureInvalid, 0, nil
	}

	blob := make([]uint32, srcWords)
	for i := range blob {
		w, err := k.m.Phys.Read(srcPA+uint32(i*4), mem.Secure)
		if err != nil {
			panic(fmt.Sprintf("monitor: restore blob read: %v", err))
		}
		blob[i] = w
	}
	k.m.Cyc.Charge(cycles.WordRead * uint64(srcWords))
	k.chargeSealCycles(len(blob))
	hdr, payload, err := seal.Open(k.sealRoot, blob)
	if err != nil || hdr.Kind != seal.KindCheckpoint {
		return kapi.ErrSealInvalid, 0, nil
	}
	img, err := seal.DecodeImage(payload)
	if err != nil || img.Measured != hdr.Measurement {
		return kapi.ErrSealInvalid, 0, nil
	}
	if nPages != uint32(1+len(img.Pages)) {
		return kapi.ErrInvalidArg, 0, nil
	}

	pages := make([]pagedb.PageNr, nPages)
	for i := range pages {
		w, err := k.m.Phys.Read(listPA+uint32(i*4), mem.Secure)
		if err != nil {
			panic(fmt.Sprintf("monitor: restore page list read: %v", err))
		}
		k.m.Cyc.Charge(cycles.WordRead)
		if !k.validPage(w) {
			return kapi.ErrInvalidPageNo, 0, nil
		}
		if k.pdType(pagedb.PageNr(w)) != ctFree {
			return kapi.ErrPageInUse, 0, nil
		}
		for j := 0; j < i; j++ {
			if uint32(pages[j]) == w {
				return kapi.ErrInvalidArg, 0, nil
			}
		}
		pages[i] = pagedb.PageNr(w)
	}
	if !img.CheckInsecure(k.insecureOK) {
		return kapi.ErrInsecureInvalid, 0, nil
	}

	k.instantiateImage(img, pages)
	return kapi.ErrSuccess, uint32(pages[0]), nil
}

// instantiateImage writes a validated image into secure memory on the
// donated pages: pages[0] is the addrspace, pages[1+i] logical page i.
func (k *Monitor) instantiateImage(img *seal.Image, pages []pagedb.PageNr) {
	as := pages[0]
	k.zeroPage(as)
	base := k.physPage(as)
	cs := uint32(csFinal)
	if img.State == pagedb.ASStopped {
		cs = csStopped
	}
	k.wr(base+asOffState, cs)
	if img.L1Index >= 0 {
		k.wr(base+asOffL1PT, uint32(pages[1+img.L1Index]))
		k.wr(base+asOffL1PTSet, 1)
	}
	k.wr(base+asOffRefCount, uint32(len(img.Pages)))
	for i, w := range img.Measured {
		k.wr(base+asOffMeasured+uint32(i*4), w)
	}
	h := img.Hash
	k.storeMeasurement(as, &h)
	k.pdSet(as, ctAddrspace, as)

	for i := range img.Pages {
		pg := pages[1+i]
		p := &img.Pages[i]
		switch p.Type {
		case pagedb.TypeThread:
			k.zeroPage(pg)
			b := k.physPage(pg)
			t := p.Thread
			k.wr(b+thOffEntry, t.EntryPoint)
			k.wr(b+thOffEntered, boolWord(t.Entered))
			for j := 0; j < 13; j++ {
				k.wr(b+thOffR0+uint32(j*4), t.Ctx.R[j])
			}
			k.wr(b+thOffSP, t.Ctx.SP)
			k.wr(b+thOffLR, t.Ctx.LR)
			k.wr(b+thOffPC, t.Ctx.PC)
			k.wr(b+thOffCPSR, t.Ctx.CPSR)
			k.wr(b+thOffHandler, t.Handler)
			k.wr(b+thOffInHandler, boolWord(t.InHandler))
			for j := 0; j < 8; j++ {
				k.wr(b+thOffVerData+uint32(j*4), t.VerifyData[j])
				k.wr(b+thOffVerMeas+uint32(j*4), t.VerifyMeasure[j])
			}
			k.pdSet(pg, ctThread, as)
		case pagedb.TypeL1PT:
			k.zeroPage(pg)
			b := k.physPage(pg)
			for s := 0; s < mmu.L1Entries; s++ {
				if p.L1.Present[s] {
					k.wr(b+uint32(s*4), k.physPage(pages[1+p.L1.Target[s]])|mmu.PteValid)
				}
			}
			k.m.NotePTStore()
			k.pdSet(pg, ctL1PT, as)
		case pagedb.TypeL2PT:
			k.zeroPage(pg)
			b := k.physPage(pg)
			for s := 0; s < mmu.L2Entries; s++ {
				e := p.L2.Entries[s]
				if !e.Valid {
					continue
				}
				m := kapi.NewMapping(0, e.Write, e.Exec)
				var pte uint32
				if e.Secure {
					pte = k.pteFor(k.physPage(pages[1+e.Target]), m, false)
				} else {
					pte = k.pteFor(e.Target, m, true)
				}
				k.wr(b+uint32(s*4), pte)
			}
			k.m.NotePTStore()
			k.pdSet(pg, ctL2PT, as)
		case pagedb.TypeData:
			if err := k.m.Phys.WritePage(k.physPage(pg), &p.Data.Contents, mem.Secure); err != nil {
				panic(fmt.Sprintf("monitor: restore data page: %v", err))
			}
			k.m.Cyc.Charge(cycles.PageCopy)
			k.tel.ObservePageMove(telemetry.MoveToSecure, uint32(pg))
			k.pdSet(pg, ctData, as)
		case pagedb.TypeSpare:
			k.zeroPage(pg)
			k.pdSet(pg, ctSpare, as)
		}
	}
}

func boolWord(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
