package mmu

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func newPhys(t *testing.T) *mem.Physical {
	t.Helper()
	p, err := mem.NewPhysical(mem.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// buildTables installs an L1 page at secure page 0 and an L2 page at secure
// page 1, mapping va -> secure page 2 with the given perms. Returns ttbr0
// and the mapped physical base.
func buildTables(t *testing.T, p *mem.Physical, va uint32, perms Perms) (ttbr0, target uint32) {
	t.Helper()
	l1 := p.SecurePageBase(0)
	l2 := p.SecurePageBase(1)
	target = p.SecurePageBase(2)
	if err := p.Write(l1+uint32(L1Index(va))*4, l2|PteValid, mem.Secure); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(l2+uint32(L2Index(va))*4, PTE(target, perms), mem.Secure); err != nil {
		t.Fatal(err)
	}
	return l1, target
}

func TestIndexExtraction(t *testing.T) {
	// va = l1<<22 | l2<<12 | off
	va := uint32(37<<22 | 513<<12 | 0x123)
	if L1Index(va) != 37 {
		t.Fatalf("L1Index = %d", L1Index(va))
	}
	if L2Index(va) != 513 {
		t.Fatalf("L2Index = %d", L2Index(va))
	}
}

func TestPTERoundTrip(t *testing.T) {
	f := func(pageNr uint16, w, x, ns bool) bool {
		base := uint32(pageNr) * mem.PageSize
		p := Perms{Write: w, Exec: x, NS: ns}
		e := PTE(base, p)
		b2, p2, ok := DecodePTE(e)
		return ok && b2 == base && p2 == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeInvalidPTE(t *testing.T) {
	if _, _, ok := DecodePTE(0); ok {
		t.Fatal("zero PTE decoded as valid")
	}
	if _, _, ok := DecodePTE(0x12345000); ok { // valid bit clear
		t.Fatal("PTE without valid bit decoded as valid")
	}
}

func TestWalkTranslates(t *testing.T) {
	p := newPhys(t)
	va := uint32(5<<22 | 7<<12)
	ttbr0, target := buildTables(t, p, va, Perms{Write: true, Exec: true})
	pa, perms, err := Walk(p, ttbr0, va+0x40)
	if err != nil {
		t.Fatal(err)
	}
	if pa != target+0x40 {
		t.Fatalf("pa = %#x, want %#x", pa, target+0x40)
	}
	if !perms.Write || !perms.Exec || perms.NS {
		t.Fatalf("perms = %+v", perms)
	}
}

func TestWalkFaults(t *testing.T) {
	p := newPhys(t)
	va := uint32(5<<22 | 7<<12)
	ttbr0, _ := buildTables(t, p, va, Perms{})

	if _, _, err := Walk(p, ttbr0, uint32(VASpaceSize)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("beyond 1GB: err = %v", err)
	}
	// Unmapped L1 entry.
	if _, _, err := Walk(p, ttbr0, uint32(9<<22)); !errors.Is(err, ErrNoMapping) {
		t.Fatalf("missing L2 table: err = %v", err)
	}
	// Mapped L1 but invalid L2 entry.
	if _, _, err := Walk(p, ttbr0, va+mem.PageSize); !errors.Is(err, ErrNoMapping) {
		t.Fatalf("invalid L2 entry: err = %v", err)
	}
	// TTBR pointing outside RAM.
	if _, _, err := Walk(p, 0x1000, va); !errors.Is(err, ErrBadTable) {
		t.Fatalf("bad ttbr: err = %v", err)
	}
}

func TestWalkInsecureMapping(t *testing.T) {
	p := newPhys(t)
	va := uint32(1 << 22)
	l1 := p.SecurePageBase(0)
	l2 := p.SecurePageBase(1)
	insec := p.Layout().InsecureBase + 3*mem.PageSize
	p.Write(l1+uint32(L1Index(va))*4, l2|PteValid, mem.Secure)
	p.Write(l2+uint32(L2Index(va))*4, PTE(insec, Perms{Write: true, NS: true}), mem.Secure)
	pa, perms, err := Walk(p, l1, va)
	if err != nil {
		t.Fatal(err)
	}
	if pa != insec || !perms.NS {
		t.Fatalf("pa=%#x perms=%+v", pa, perms)
	}
}

func TestTLBFillLookupFlush(t *testing.T) {
	tlb := NewTLB()
	if !tlb.Consistent() {
		t.Fatal("fresh TLB not consistent")
	}
	if _, _, ok := tlb.Lookup(0x1000); ok {
		t.Fatal("empty TLB hit")
	}
	tlb.Fill(0x1234, 0x40002000, Perms{Write: true})
	pa, perms, ok := tlb.Lookup(0x1ffc)
	if !ok || pa != 0x40002000 || !perms.Write {
		t.Fatalf("lookup after fill: ok=%v pa=%#x perms=%+v", ok, pa, perms)
	}
	tlb.MarkInconsistent()
	if tlb.Consistent() {
		t.Fatal("MarkInconsistent ignored")
	}
	// Stale entry persists until flush — the real hazard.
	if _, _, ok := tlb.Lookup(0x1000); !ok {
		t.Fatal("entry dropped without flush")
	}
	tlb.Flush()
	if !tlb.Consistent() || tlb.Size() != 0 {
		t.Fatal("flush did not reset TLB")
	}
	fills, hits, flushes := tlb.Stats()
	if fills != 1 || hits != 2 || flushes != 1 {
		t.Fatalf("stats = %d/%d/%d", fills, hits, flushes)
	}
}

func TestWalkMatchesTLBGranularity(t *testing.T) {
	// Any two addresses in the same page walk to the same page base.
	p := newPhys(t)
	va := uint32(2 << 22)
	ttbr0, _ := buildTables(t, p, va, Perms{Write: true})
	pa1, _, err1 := Walk(p, ttbr0, va)
	pa2, _, err2 := Walk(p, ttbr0, va+mem.PageSize-4)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if pa1&^uint32(mem.PageSize-1) != pa2&^uint32(mem.PageSize-1) {
		t.Fatalf("page bases differ: %#x vs %#x", pa1, pa2)
	}
}
