// Package mmu implements the simulated MMU: two-level hierarchical page
// tables over a 1 GB enclave virtual address space, page walks, permission
// checks, and a TLB with the consistency tracking the paper's machine model
// specifies (§5.1 "As well as page tables, we also model TLB consistency").
//
// Komodo encodes "a two-level hierarchical page table with a granularity
// chosen to reflect ARM's hardware page-table format" (§4). Our layout:
//
//	VA (1 GB limit, §7.2/Figure 4: TTBR0 maps only the first 1 GB):
//	  bits[31:30] = 0        (addresses ≥1 GB are not translated by TTBR0)
//	  bits[29:22] = L1 index (256 entries, each covering 4 MB)
//	  bits[21:12] = L2 index (1024 entries, each covering 4 kB)
//	  bits[11: 0] = page offset
//
//	L1 entry (word i of the L1 page-table page, i < 256):
//	  0 = invalid; otherwise bits[31:12] = L2 table page base, bit0 = 1.
//
//	L2 entry (word j of an L2 page-table page, j < 1024):
//	  0 = invalid; otherwise bits[31:12] = target page base,
//	  bit0 = valid, bit1 = writable, bit2 = executable,
//	  bit3 = NS (maps an insecure page).
//
// This differs from ARM's short-descriptor bit placement but preserves its
// structure (a 4 kB L2 granule, hierarchical walk, per-page permissions and
// a per-mapping security attribute), which is all the monitor's correctness
// argument depends on.
package mmu

import (
	"errors"
	"fmt"

	"repro/internal/mem"
)

// Address-space geometry.
const (
	// VASpaceSize is the 1 GB enclave virtual address space limit.
	VASpaceSize = 1 << 30
	// L1Entries is the number of first-level entries (4 MB each).
	L1Entries = 256
	// L2Entries is the number of second-level entries per table (4 kB each).
	L2Entries = 1024
	// L1Span is the VA range covered by one L1 entry.
	L1Span = VASpaceSize / L1Entries // 4 MB
)

// PTE permission/attribute bits (L2 entries).
const (
	PteValid uint32 = 1 << 0
	PteWrite uint32 = 1 << 1
	PteExec  uint32 = 1 << 2
	PteNS    uint32 = 1 << 3

	pteAttrMask = PteValid | PteWrite | PteExec | PteNS
	pteBaseMask = ^uint32(mem.PageSize - 1)
)

// Perms is the decoded permission set of a mapping. Read access is implied
// by validity, as in Komodo's model.
type Perms struct {
	Write bool
	Exec  bool
	NS    bool // target is an insecure (normal-world) page
}

// PTE builds an L2 entry for the page at base with the given permissions.
func PTE(base uint32, p Perms) uint32 {
	e := (base & pteBaseMask) | PteValid
	if p.Write {
		e |= PteWrite
	}
	if p.Exec {
		e |= PteExec
	}
	if p.NS {
		e |= PteNS
	}
	return e
}

// DecodePTE splits an L2 entry into page base and permissions. The second
// return is false if the entry is invalid.
func DecodePTE(e uint32) (base uint32, p Perms, valid bool) {
	if e&PteValid == 0 {
		return 0, Perms{}, false
	}
	return e & pteBaseMask, Perms{
		Write: e&PteWrite != 0,
		Exec:  e&PteExec != 0,
		NS:    e&PteNS != 0,
	}, true
}

// L1Index and L2Index extract the walk indices from a virtual address.
func L1Index(va uint32) int { return int(va>>22) & (L1Entries - 1) }
func L2Index(va uint32) int { return int(va>>12) & (L2Entries - 1) }

// InVASpace reports whether va is inside the translated 1 GB region.
func InVASpace(va uint32) bool { return va < VASpaceSize }

// Translation faults. The CPU converts these to prefetch/data aborts.
var (
	ErrOutOfRange = errors.New("mmu: virtual address beyond 1 GB enclave space")
	ErrNoMapping  = errors.New("mmu: translation fault")
	ErrBadTable   = errors.New("mmu: page-table walk touched invalid memory")
)

// Walk performs a two-level page-table walk through physical memory. The
// walk itself is a secure-world access (the monitor installs enclave page
// tables in secure pages). It does not consult the TLB.
func Walk(phys *mem.Physical, ttbr0, va uint32) (pa uint32, p Perms, err error) {
	if !InVASpace(va) {
		return 0, Perms{}, fmt.Errorf("%w: %#x", ErrOutOfRange, va)
	}
	l1e, rerr := phys.Read(ttbr0+uint32(L1Index(va))*4, mem.Secure)
	if rerr != nil {
		return 0, Perms{}, fmt.Errorf("%w: L1 at ttbr0=%#x: %v", ErrBadTable, ttbr0, rerr)
	}
	if l1e&PteValid == 0 {
		return 0, Perms{}, fmt.Errorf("%w: no L2 table for va %#x", ErrNoMapping, va)
	}
	l2base := l1e & pteBaseMask
	l2e, rerr := phys.Read(l2base+uint32(L2Index(va))*4, mem.Secure)
	if rerr != nil {
		return 0, Perms{}, fmt.Errorf("%w: L2 at %#x: %v", ErrBadTable, l2base, rerr)
	}
	base, perms, valid := DecodePTE(l2e)
	if !valid {
		return 0, Perms{}, fmt.Errorf("%w: va %#x", ErrNoMapping, va)
	}
	return base | (va & (mem.PageSize - 1)), perms, nil
}

// TLB caches completed translations at page granularity. Entries persist
// until an explicit flush: modifying a page table without flushing leaves
// stale entries visible, exactly the hazard the paper's model forces the
// implementation to reason about (§5.1). Consistent() tracks whether any
// page-table store or TTBR0 load has occurred since the last flush; the
// monitor's proof obligation — flush before entering an enclave — becomes a
// runtime check in our refinement harness.
type TLB struct {
	entries    map[uint32]tlbEntry // key: VA page base
	consistent bool
	fills      uint64
	hits       uint64
	misses     uint64
	flushes    uint64
	// epoch advances on every event after which a previously completed
	// translation might resolve differently on the next walk: a flush
	// (entries drop, the walk re-reads possibly modified tables) or a
	// consistency-breaking store/TTBR load. Derived caches keyed on a
	// translation result (the arm package's predecoded-instruction
	// cache) validate against it instead of hooking every maintenance
	// call site.
	epoch uint64

	// One-entry MRU cache in front of the map: instruction fetch hits the
	// same page for long runs, and the map lookup dominates the
	// interpreter's per-instruction cost (simulator performance only —
	// architecturally invisible).
	lastVA uint32
	last   tlbEntry
	lastOK bool
}

type tlbEntry struct {
	paBase uint32
	perms  Perms
}

// NewTLB returns an empty, consistent TLB.
func NewTLB() *TLB {
	return &TLB{entries: make(map[uint32]tlbEntry), consistent: true}
}

// Lookup returns a cached translation for the page containing va.
func (t *TLB) Lookup(va uint32) (paBase uint32, p Perms, ok bool) {
	page := va &^ uint32(mem.PageSize-1)
	if t.lastOK && t.lastVA == page {
		t.hits++
		return t.last.paBase, t.last.perms, true
	}
	e, ok := t.entries[page]
	if ok {
		t.hits++
		t.lastVA, t.last, t.lastOK = page, e, true
	} else {
		t.misses++
	}
	return e.paBase, e.perms, ok
}

// Fill caches a completed walk.
func (t *TLB) Fill(va, paBase uint32, p Perms) {
	t.fills++
	page := va &^ uint32(mem.PageSize-1)
	e := tlbEntry{paBase: paBase &^ uint32(mem.PageSize-1), perms: p}
	t.entries[page] = e
	t.lastVA, t.last, t.lastOK = page, e, true
}

// RecordHit counts a lookup that a derived cache proved would hit without
// performing it. The arm package's predecode cache skips Lookup on its
// fast path (a matching epoch guarantees the fill-time translation is
// still cached here); counting the hit it elided keeps the TLB hit-rate
// telemetry describing the same architectural fetch stream either way.
func (t *TLB) RecordHit() { t.hits++ }

// RecordHits batch-records n elided lookups that would all have hit: the
// arm package's superblock cache proves a whole block's fetches would hit
// (epoch match at block entry) and records them in one call at block exit.
func (t *TLB) RecordHits(n uint64) { t.hits += n }

// Flush invalidates all entries and marks the TLB consistent (the model
// supports only whole-TLB flushes, per §5.1).
func (t *TLB) Flush() {
	t.flushes++
	t.epoch++
	t.entries = make(map[uint32]tlbEntry)
	t.consistent = true
	t.lastOK = false
}

// MarkInconsistent records a page-table store or TTBR0 load without flush.
func (t *TLB) MarkInconsistent() {
	t.consistent = false
	t.epoch++
}

// Epoch returns the translation-validity epoch (see the field comment).
func (t *TLB) Epoch() uint64 { return t.epoch }

// Consistent reports whether the TLB is known to agree with the tables.
func (t *TLB) Consistent() bool { return t.consistent }

// Stats returns fill/hit/flush counters for evaluation.
func (t *TLB) Stats() (fills, hits, flushes uint64) { return t.fills, t.hits, t.flushes }

// Counters is the TLB's full counter set for telemetry. Every miss
// corresponds to a page walk; fills can exceed misses only if a caller
// fills without a preceding failed lookup.
type Counters struct {
	Hits    uint64
	Misses  uint64
	Fills   uint64
	Flushes uint64
	Entries int
}

// Counters returns the current counter values.
func (t *TLB) Counters() Counters {
	return Counters{Hits: t.hits, Misses: t.misses, Fills: t.fills, Flushes: t.flushes, Entries: len(t.entries)}
}

// Size returns the number of cached entries.
func (t *TLB) Size() int { return len(t.entries) }
