package mmu

import (
	"testing"

	"repro/internal/mem"
)

// TestTLBEdgeCases is the table-driven edge-case suite for the TLB's
// counter and consistency semantics. Each case runs a fresh TLB through a
// scripted sequence and asserts the exact Counters() afterwards — the same
// counters the telemetry snapshot exposes, so these tests also pin the
// meaning of the stats the -stats output reports.
func TestTLBEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		run        func(t *testing.T, tlb *TLB)
		want       Counters
		consistent bool
	}{
		{
			// A flush must invalidate both the map and the one-entry MRU
			// cache: looking up the just-flushed page may not hit.
			name: "lookup-after-flush-misses",
			run: func(t *testing.T, tlb *TLB) {
				tlb.Fill(0x1000, 0x40002000, Perms{})
				if _, _, ok := tlb.Lookup(0x1000); !ok {
					t.Fatal("lookup after fill missed")
				}
				tlb.Flush()
				if _, _, ok := tlb.Lookup(0x1000); ok {
					t.Fatal("lookup after flush hit a stale entry")
				}
			},
			want:       Counters{Hits: 1, Misses: 1, Fills: 1, Flushes: 1, Entries: 0},
			consistent: true,
		},
		{
			// Repeated misses on the same page each count: the MRU cache
			// is only set on hits/fills, never on misses.
			name: "repeated-misses-all-count",
			run: func(t *testing.T, tlb *TLB) {
				for i := 0; i < 3; i++ {
					if _, _, ok := tlb.Lookup(0x5000); ok {
						t.Fatal("empty TLB hit")
					}
				}
			},
			want:       Counters{Misses: 3},
			consistent: true,
		},
		{
			// All offsets within one page share a single entry; every
			// lookup is a hit (first via the map, rest via the MRU cache).
			name: "offsets-share-one-entry",
			run: func(t *testing.T, tlb *TLB) {
				tlb.Fill(0x2abc, 0x40003000, Perms{Write: true})
				for _, off := range []uint32{0x0, 0x4, 0xffc} {
					pa, p, ok := tlb.Lookup(0x2000 + off)
					if !ok || pa != 0x40003000 || !p.Write {
						t.Fatalf("offset %#x: ok=%v pa=%#x perms=%+v", off, ok, pa, p)
					}
				}
			},
			want:       Counters{Hits: 3, Fills: 1, Entries: 1},
			consistent: true,
		},
		{
			// Refilling the same VA overwrites in place: entry count stays
			// 1 and the new translation wins immediately.
			name: "refill-overwrites-in-place",
			run: func(t *testing.T, tlb *TLB) {
				tlb.Fill(0x3000, 0x40004000, Perms{})
				tlb.Fill(0x3000, 0x40008000, Perms{Exec: true})
				pa, p, ok := tlb.Lookup(0x3000)
				if !ok || pa != 0x40008000 || !p.Exec {
					t.Fatalf("refill not visible: ok=%v pa=%#x perms=%+v", ok, pa, p)
				}
			},
			want:       Counters{Hits: 1, Fills: 2, Entries: 1},
			consistent: true,
		},
		{
			// The §5.1 hazard: marking inconsistent does NOT drop entries.
			// Stale translations keep hitting until an explicit flush —
			// that is exactly why the monitor must flush before entry.
			name: "mark-inconsistent-keeps-stale-entries",
			run: func(t *testing.T, tlb *TLB) {
				tlb.Fill(0x4000, 0x40005000, Perms{})
				tlb.MarkInconsistent()
				if _, _, ok := tlb.Lookup(0x4000); !ok {
					t.Fatal("entry dropped by MarkInconsistent")
				}
			},
			want:       Counters{Hits: 1, Fills: 1, Entries: 1},
			consistent: false,
		},
		{
			// Flush is the only way back to consistency, and it always
			// counts — even on an already-empty TLB.
			name: "flush-restores-consistency",
			run: func(t *testing.T, tlb *TLB) {
				tlb.MarkInconsistent()
				tlb.Flush()
				tlb.Flush()
			},
			want:       Counters{Flushes: 2},
			consistent: true,
		},
		{
			// Alternating between two pages defeats the MRU cache but
			// still hits the map: hits count identically either way.
			name: "alternating-pages-hit-via-map",
			run: func(t *testing.T, tlb *TLB) {
				tlb.Fill(0x6000, 0x40006000, Perms{})
				tlb.Fill(0x7000, 0x40007000, Perms{})
				for i := 0; i < 2; i++ {
					if _, _, ok := tlb.Lookup(0x6000); !ok {
						t.Fatal("miss on 0x6000")
					}
					if _, _, ok := tlb.Lookup(0x7000); !ok {
						t.Fatal("miss on 0x7000")
					}
				}
			},
			want:       Counters{Hits: 4, Fills: 2, Entries: 2},
			consistent: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tlb := NewTLB()
			tc.run(t, tlb)
			if got := tlb.Counters(); got != tc.want {
				t.Errorf("Counters() = %+v, want %+v", got, tc.want)
			}
			if got := tlb.Consistent(); got != tc.consistent {
				t.Errorf("Consistent() = %v, want %v", got, tc.consistent)
			}
		})
	}
}

// TestTLBStaleAfterRemap reproduces the fill-then-remap inconsistency
// end-to-end: a cached walk keeps translating to the OLD physical page
// after the page table is rewritten, until the TLB is flushed. This is the
// concrete attack the monitor's flush-before-entry obligation closes.
func TestTLBStaleAfterRemap(t *testing.T) {
	p := newPhys(t)
	va := uint32(3 << 22)
	ttbr0, oldTarget := buildTables(t, p, va, Perms{Write: true})

	tlb := NewTLB()
	pa, _, err := Walk(p, ttbr0, va)
	if err != nil {
		t.Fatal(err)
	}
	tlb.Fill(va, pa, Perms{Write: true})

	// Remap the same VA to a different physical page, as a page-table
	// store would. The store obligates MarkInconsistent.
	newTarget := p.SecurePageBase(3)
	l2 := p.SecurePageBase(1)
	if err := p.Write(l2+uint32(L2Index(va))*4, PTE(newTarget, Perms{Write: true}), mem.Secure); err != nil {
		t.Fatal(err)
	}
	tlb.MarkInconsistent()

	// The TLB still serves the stale translation...
	stale, _, ok := tlb.Lookup(va)
	if !ok || stale != oldTarget {
		t.Fatalf("stale lookup: ok=%v pa=%#x, want old target %#x", ok, stale, oldTarget)
	}
	// ...while a fresh walk sees the new mapping: TLB and tables disagree,
	// which is what Consistent()==false asserts.
	walked, _, err := Walk(p, ttbr0, va)
	if err != nil {
		t.Fatal(err)
	}
	if walked != newTarget {
		t.Fatalf("walk after remap = %#x, want %#x", walked, newTarget)
	}
	if tlb.Consistent() {
		t.Fatal("TLB consistent while serving a stale translation")
	}

	// Flush closes the window: next lookup misses and a refill from the
	// walk restores agreement.
	tlb.Flush()
	if _, _, ok := tlb.Lookup(va); ok {
		t.Fatal("stale entry survived flush")
	}
	tlb.Fill(va, walked, Perms{Write: true})
	pa2, _, ok := tlb.Lookup(va)
	if !ok || pa2 != newTarget {
		t.Fatalf("post-flush lookup: ok=%v pa=%#x", ok, pa2)
	}
	c := tlb.Counters()
	if c.Misses != 1 || c.Flushes != 1 || c.Fills != 2 {
		t.Fatalf("counters after remap scenario: %+v", c)
	}
}
