// Package ni implements Komodo's security argument (§6): the observational
// equivalence relations of Definitions 1 and 2, the adversary relation
// ≈adv, the declassification rules (§6.2), and a bisimulation harness that
// runs paired executions to check the noninterference theorem (Theorem 6.1)
// over both the functional specification and the concrete monitor.
//
// "We formally prove that the Komodo specification... protects the
// confidentiality and integrity of enclave code and data from other
// software on the machine." Our runtime analogue: for states related by
// ≈L, identical adversary actions must yield states related by ≈L, with
// equal adversary-visible outputs.
package ni

import (
	"fmt"

	"repro/internal/arm"
	"repro/internal/mem"
	"repro/internal/pagedb"
)

// WeakEqual is Definition 1 (=enc): pages outside the observer's address
// space look the same if they have the same type (data/spare), the same
// entered flag (threads), or are exactly equal (page tables and address
// spaces). "An enclave cannot observe data page contents or thread context
// unless those pages belong to it."
func WeakEqual(e1, e2 *pagedb.Entry) bool {
	if e1.Type != e2.Type {
		return false
	}
	switch e1.Type {
	case pagedb.TypeData, pagedb.TypeSpare, pagedb.TypeFree:
		return true
	case pagedb.TypeThread:
		return e1.Thread.Entered == e2.Thread.Entered
	case pagedb.TypeL1PT, pagedb.TypeL2PT, pagedb.TypeAddrspace:
		return pagedb.EntriesEqual(e1, e2)
	}
	return false
}

// ObsEquivalent is Definition 2 (≈enc): d1 and d2 are observationally
// equivalent from enclave enc's perspective iff the free sets agree, enc's
// page set agrees, pages outside enc are weakly equal, and pages inside
// enc are exactly equal. Returns nil, or an error naming the first
// violation (useful in failing tests).
func ObsEquivalent(d1, d2 *pagedb.DB, enc pagedb.PageNr) error {
	if d1.NPages != d2.NPages {
		return fmt.Errorf("ni: page counts differ")
	}
	for i := range d1.Pages {
		n := pagedb.PageNr(i)
		e1, e2 := d1.Get(n), d2.Get(n)
		// F(d1) = F(d2): the free sets agree.
		if (e1.Type == pagedb.TypeFree) != (e2.Type == pagedb.TypeFree) {
			return fmt.Errorf("ni: page %d free in one state only", n)
		}
		in1 := ownedByOrIs(d1, n, enc)
		in2 := ownedByOrIs(d2, n, enc)
		// A_enc(d1) = A_enc(d2): the observer's page set agrees.
		if in1 != in2 {
			return fmt.Errorf("ni: page %d belongs to enclave %d in one state only", n, enc)
		}
		if in1 {
			if !pagedb.EntriesEqual(e1, e2) {
				return fmt.Errorf("ni: observer page %d differs", n)
			}
		} else if !WeakEqual(e1, e2) {
			return fmt.Errorf("ni: outside page %d not weakly equal (%v vs %v)", n, e1.Type, e2.Type)
		}
	}
	return nil
}

func ownedByOrIs(d *pagedb.DB, n, enc pagedb.PageNr) bool {
	e := d.Get(n)
	if e.Type == pagedb.TypeFree {
		return false
	}
	if n == enc && e.Type == pagedb.TypeAddrspace {
		return true
	}
	return e.Type != pagedb.TypeAddrspace && e.Owner == enc
}

// MachineObs is the machine state the OS adversary can observe directly:
// "the general-purpose registers, the banked registers (excluding monitor
// mode), and the insecure memory" (§6.1).
type MachineObs struct {
	R              [13]uint32
	Banked         map[arm.Mode][2]uint32 // SP, LR for each non-monitor mode
	PSRMode        arm.Mode
	InsecureDigest [32]byte
}

// ObserveMachine captures the adversary-visible machine state. Insecure
// memory is captured as a digest to keep paired comparisons cheap.
func ObserveMachine(m *arm.Machine) MachineObs {
	obs := MachineObs{Banked: make(map[arm.Mode][2]uint32), PSRMode: m.CPSR().Mode}
	for i := range obs.R {
		obs.R[i] = m.Reg(arm.Reg(i))
	}
	for _, md := range []arm.Mode{arm.ModeUsr, arm.ModeSvc, arm.ModeAbt, arm.ModeUnd, arm.ModeIrq, arm.ModeFiq} {
		obs.Banked[md] = [2]uint32{m.RegBanked(md, arm.SP), m.RegBanked(md, arm.LR)}
	}
	obs.InsecureDigest = insecureDigest(m)
	return obs
}

func insecureDigest(m *arm.Machine) [32]byte {
	l := m.Phys.Layout()
	h := newHasher()
	var buf [4]byte
	for off := uint32(0); off < l.InsecureSize; off += 4 {
		v, err := m.Phys.Read(l.InsecureBase+off, mem.Normal)
		if err != nil {
			panic(err)
		}
		buf[0], buf[1], buf[2], buf[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
		h.Write(buf[:])
	}
	return h.Sum()
}

// MachineObsEqual compares two adversary views.
func MachineObsEqual(a, b MachineObs) error {
	if a.R != b.R {
		return fmt.Errorf("ni: general-purpose registers differ")
	}
	if a.PSRMode != b.PSRMode {
		return fmt.Errorf("ni: modes differ")
	}
	for md, v := range a.Banked {
		if b.Banked[md] != v {
			return fmt.Errorf("ni: banked registers of mode %v differ", md)
		}
	}
	if a.InsecureDigest != b.InsecureDigest {
		return fmt.Errorf("ni: insecure memory differs")
	}
	return nil
}

// AdvEquivalent is ≈adv (§6.1): the OS adversary colluding with enclave
// enc. States are related iff they are ≈enc related for the malicious
// enclave and the adversary-visible machine state is equal.
func AdvEquivalent(m1 MachineObs, d1 *pagedb.DB, m2 MachineObs, d2 *pagedb.DB, enc pagedb.PageNr) error {
	if err := ObsEquivalent(d1, d2, enc); err != nil {
		return err
	}
	return MachineObsEqual(m1, m2)
}
