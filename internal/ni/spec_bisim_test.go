package ni

import (
	"math/rand"
	"testing"

	"repro/internal/kapi"
	"repro/internal/mem"
	"repro/internal/pagedb"
	"repro/internal/spec"
)

// Spec-level bisimulation: Theorem 6.1 proved — in the runtime sense —
// directly over the functional specification, with no machine in the loop.
// Hundreds of random adversarial traces run in milliseconds here,
// complementing the slower concrete-machine bisimulations.

func specParams() spec.Params {
	return spec.Params{
		NPages:       24,
		InsecureBase: 0x8000_0000,
		InsecureSize: 16 << 20,
		AttestKey:    [32]byte{42},
		Rand:         func() uint32 { return 7 },
	}
}

// buildTwoEnclaves returns a PageDB with a victim enclave (pages 0..4) and
// a colluder enclave (pages 5..9), both finalised.
func buildTwoEnclaves(t *testing.T, p spec.Params) (*pagedb.DB, pagedb.PageNr, pagedb.PageNr) {
	t.Helper()
	d := pagedb.New(p.NPages)
	mk := func(base pagedb.PageNr) {
		var e kapi.Err
		d, e = spec.InitAddrspace(p, d, base, base+1)
		mustNI(t, e)
		d, e = spec.InitL2PTable(p, d, base, base+2, 0)
		mustNI(t, e)
		var c [mem.PageWords]uint32
		d, e = spec.MapSecure(p, d, base, base+3, kapi.NewMapping(0x1000, true, true), p.InsecureBase, &c)
		mustNI(t, e)
		d, e = spec.InitThread(p, d, base, base+4, 0x1000)
		mustNI(t, e)
		d, e = spec.Finalise(p, d, base)
		mustNI(t, e)
	}
	mk(0)
	mk(5)
	return d, 0, 5
}

func mustNI(t *testing.T, e kapi.Err) {
	t.Helper()
	if e != kapi.ErrSuccess {
		t.Fatal(e)
	}
}

// havocVictim returns a copy of d with the victim's private state changed
// (data contents and thread context): the secret-differing twin.
func havocVictim(d *pagedb.DB, victim pagedb.PageNr, seed uint32) *pagedb.DB {
	nd := d.Clone()
	data := nd.Get(victim + 3).Data
	for i := 0; i < 64; i++ {
		data.Contents[i] = seed ^ uint32(i)*2654435761
	}
	th := nd.Get(victim + 4).Thread
	th.Ctx.R[0] = seed
	th.Ctx.PC = seed ^ 0x1000
	return nd
}

func randomSpecSMC(rnd *rand.Rand, p spec.Params) spec.SMCRequest {
	calls := []uint32{
		kapi.SMCGetPhysPages, kapi.SMCInitAddrspace, kapi.SMCInitThread,
		kapi.SMCInitL2PTable, kapi.SMCAllocSpare, kapi.SMCMapSecure,
		kapi.SMCMapInsecure, kapi.SMCFinalise, kapi.SMCStop, kapi.SMCRemove,
	}
	req := spec.SMCRequest{Call: calls[rnd.Intn(len(calls))]}
	pg := func() uint32 { return uint32(rnd.Intn(p.NPages + 2)) }
	va := func() uint32 {
		return uint32(kapi.NewMapping(uint32(rnd.Intn(8))*0x1000, rnd.Intn(2) == 0, rnd.Intn(2) == 0))
	}
	insec := p.InsecureBase + uint32(rnd.Intn(8))*0x1000
	switch req.Call {
	case kapi.SMCInitAddrspace, kapi.SMCAllocSpare:
		req.Args = [4]uint32{pg(), pg()}
	case kapi.SMCInitThread:
		req.Args = [4]uint32{pg(), pg(), rnd.Uint32() % (1 << 30)}
	case kapi.SMCInitL2PTable:
		req.Args = [4]uint32{pg(), pg(), uint32(rnd.Intn(300))}
	case kapi.SMCMapSecure:
		var c [mem.PageWords]uint32
		c[0] = rnd.Uint32() // public: the OS chose it, same on both sides
		req.Contents = &c
		req.Args = [4]uint32{pg(), pg(), va(), insec}
	case kapi.SMCMapInsecure:
		req.Args = [4]uint32{pg(), va(), insec}
	default:
		req.Args = [4]uint32{pg()}
	}
	return req
}

// TestSpecConfidentialityBisimulation: for hundreds of random adversarial
// SMC traces, states differing only in victim secrets stay ≈enc-equivalent
// for the colluder, with identical OS-visible outputs at every step.
func TestSpecConfidentialityBisimulation(t *testing.T) {
	p := specParams()
	rnd := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		base, victim, colluder := buildTwoEnclaves(t, p)
		d1 := havocVictim(base, victim, 0x1111_0000+uint32(trial))
		d2 := havocVictim(base, victim, 0x2222_0000+uint32(trial))
		if err := ObsEquivalent(d1, d2, colluder); err != nil {
			t.Fatalf("trial %d setup: %v", trial, err)
		}
		for step := 0; step < 40; step++ {
			req := randomSpecSMC(rnd, p)
			nd1, v1, e1 := spec.ApplySMC(p, d1, req)
			nd2, v2, e2 := spec.ApplySMC(p, d2, req)
			// OS-visible outputs must be identical: any difference is a
			// secret-dependent result.
			if e1 != e2 || v1 != v2 {
				t.Fatalf("trial %d step %d: call %d args %v leaked: (%v,%d) vs (%v,%d)",
					trial, step, req.Call, req.Args, e1, v1, e2, v2)
			}
			if err := ObsEquivalent(nd1, nd2, colluder); err != nil {
				t.Fatalf("trial %d step %d: call %d args %v broke ≈enc: %v",
					trial, step, req.Call, req.Args, err)
			}
			d1, d2 = nd1, nd2
		}
	}
}

// TestSpecIntegrityBisimulation: runs differing only in the *colluder's*
// private state leave the victim's pages exactly equal under any
// adversarial SMC trace.
func TestSpecIntegrityBisimulation(t *testing.T) {
	p := specParams()
	rnd := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		base, victim, colluder := buildTwoEnclaves(t, p)
		// The twins differ in the colluder's (untrusted) state.
		d1 := havocVictim(base, colluder, 0xaaaa_0000+uint32(trial))
		d2 := havocVictim(base, colluder, 0xbbbb_0000+uint32(trial))
		for step := 0; step < 40; step++ {
			req := randomSpecSMC(rnd, p)
			d1, _, _ = spec.ApplySMC(p, d1, req)
			d2, _, _ = spec.ApplySMC(p, d2, req)
			// The trusted enclave's view — its own pages in particular —
			// is identical in both runs.
			if err := ObsEquivalent(d1, d2, victim); err != nil {
				t.Fatalf("trial %d step %d: call %d influenced the victim: %v",
					trial, step, req.Call, err)
			}
		}
	}
}

// TestSpecAttestationNoLeak: Attest and Verify results depend only on
// public inputs (measurement, supplied data) — never on the enclave's
// private page contents.
func TestSpecAttestationNoLeak(t *testing.T) {
	p := specParams()
	base, victim, _ := buildTwoEnclaves(t, p)
	d1 := havocVictim(base, victim, 0x1234)
	d2 := havocVictim(base, victim, 0x9876)
	data := [8]uint32{5, 6, 7, 8}
	_, mac1, e1 := spec.SvcAttest(p, d1, victim+4, data)
	_, mac2, e2 := spec.SvcAttest(p, d2, victim+4, data)
	if e1 != e2 || mac1 != mac2 {
		t.Fatal("attestation depends on private page contents")
	}
}
