package ni

import (
	"errors"
	"testing"

	"repro/internal/board"
	"repro/internal/kapi"
	"repro/internal/kasm"
	"repro/internal/mem"
	"repro/internal/monitor"
	"repro/internal/nwos"
)

// The attack catalogue: every §3 threat-model attack, asserted. These
// complement the bisimulation tests — bisimulation shows nothing leaks;
// these show each concrete attack fails with the architecturally specified
// behaviour, and that the PageDB invariants survive the attempt.

func attackWorld(t *testing.T) *World {
	t.Helper()
	w, err := NewWorld(31, board.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func buildVictim(t *testing.T, w *World) *nwos.Enclave {
	t.Helper()
	img, err := kasm.ComputeOnSecret().Image()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := w.OS.BuildEnclave(img)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestAttackCatalogueAPIAbuse(t *testing.T) {
	w := attackWorld(t)
	victim := buildVictim(t, w)
	phys := w.Plat.Machine.Phys

	attacks := []struct {
		name string
		call uint32
		args []uint32
		want kapi.Err
	}{
		{"aliased InitAddrspace (§9.1 bug)",
			kapi.SMCInitAddrspace, []uint32{30, 30}, kapi.ErrInvalidArg},
		{"double-allocate victim addrspace",
			kapi.SMCInitAddrspace, []uint32{uint32(victim.AS), 30}, kapi.ErrPageInUse},
		{"steal victim data page as new L1",
			kapi.SMCInitAddrspace, []uint32{30, uint32(victim.Data[0])}, kapi.ErrPageInUse},
		{"rogue thread into finalised victim",
			kapi.SMCInitThread, []uint32{uint32(victim.AS), 30, 0x6666}, kapi.ErrAlreadyFinal},
		{"rogue L2 table into finalised victim",
			kapi.SMCInitL2PTable, []uint32{uint32(victim.AS), 30, 5}, kapi.ErrAlreadyFinal},
		{"map OS page into finalised victim",
			kapi.SMCMapInsecure, []uint32{uint32(victim.AS),
				uint32(kapi.NewMapping(0x9000, true, false)), 0x8000_0000}, kapi.ErrAlreadyFinal},
		{"MapSecure into finalised victim (sourcing secure RAM)",
			kapi.SMCMapSecure, []uint32{uint32(victim.AS), 30,
				uint32(kapi.NewMapping(0x9000, true, false)), 0x4000_0000}, kapi.ErrAlreadyFinal},
		{"MapSecure sourcing secure RAM (fresh addrspace number)",
			kapi.SMCMapSecure, []uint32{31, 30,
				uint32(kapi.NewMapping(0x9000, true, false)), 0x4000_0000}, kapi.ErrInvalidAddrspace},
		{"free a live victim page",
			kapi.SMCRemove, []uint32{uint32(victim.Data[0])}, kapi.ErrNotStopped},
		{"free the live victim addrspace",
			kapi.SMCRemove, []uint32{uint32(victim.AS)}, kapi.ErrNotStopped},
		{"resume a thread that is not suspended",
			kapi.SMCResume, []uint32{uint32(victim.Thread)}, kapi.ErrNotEntered},
		{"enter a data page as a thread",
			kapi.SMCEnter, []uint32{uint32(victim.Data[0]), 0, 0, 0}, kapi.ErrNotThread},
		{"spare for an addrspace that is a thread page",
			kapi.SMCAllocSpare, []uint32{uint32(victim.Thread), 30}, kapi.ErrInvalidAddrspace},
		{"unknown SMC number",
			999, []uint32{1, 2, 3}, kapi.ErrInvalidArg},
	}
	for _, a := range attacks {
		e, _, err := w.Chk.SMC(a.call, a.args...)
		if err != nil {
			t.Fatalf("%s: harness error: %v", a.name, err)
		}
		if e != a.want {
			t.Errorf("%s: got %v, want %v", a.name, e, a.want)
		}
	}
	// After the whole barrage, the victim still runs correctly and the
	// PageDB is intact (the refinement checker validated it per call).
	if e, v, err := w.OS.Enter(victim); err != nil || e != kapi.ErrSuccess || v != 1 {
		t.Fatalf("victim damaged by attack barrage: %v %v %d", err, e, v)
	}
	// ...and direct physical probes of its memory still bounce.
	if _, err := phys.Read(0x4000_0000, mem.Normal); !errors.Is(err, mem.ErrSecureViolation) {
		t.Fatal("secure RAM readable from normal world")
	}
}

func TestAttackControlledChannelDenied(t *testing.T) {
	// Controlled-channel attacks (§2, [88]) need the OS to (a) revoke an
	// enclave page mapping and (b) observe the resulting fault. Komodo
	// denies (a) structurally: no SMC can alter a finalised enclave's
	// address space, so there is nothing for the OS to induce.
	w := attackWorld(t)
	victim := buildVictim(t, w)

	// Every call that could touch the victim's translation structures is
	// refused (exercised above); additionally, suspending the enclave
	// mid-run gives the OS no new powers over its memory.
	w.Plat.Machine.ScheduleIRQ(10)
	e, v, err := w.OS.Enter(victim)
	if err != nil {
		t.Fatal(err)
	}
	if e == kapi.ErrInterrupted {
		// While suspended: still nothing removable or remappable.
		if e, _, _ := w.Chk.SMC(kapi.SMCRemove, uint32(victim.Data[0])); e != kapi.ErrNotStopped {
			t.Fatalf("page theft while suspended: %v", e)
		}
		if e, _, _ := w.Chk.SMC(kapi.SMCMapInsecure, uint32(victim.AS),
			uint32(kapi.NewMapping(0x9000, true, false)), 0x8000_0000); e != kapi.ErrAlreadyFinal {
			t.Fatalf("remap while suspended: %v", e)
		}
		e, v, err = w.OS.Resume(victim)
		if err != nil {
			t.Fatal(err)
		}
	}
	if e != kapi.ErrSuccess || v != 1 {
		t.Fatalf("victim after suspension probes: (%v, %d)", e, v)
	}
}

func TestAttackPhysicalVariants(t *testing.T) {
	secret := uint32(0x0b5e55ed)
	for _, variant := range []mem.Protection{mem.ProtFilter, mem.ProtEncrypt, mem.ProtScratchpad} {
		w, err := NewWorld(33, board.Config{Protection: variant})
		if err != nil {
			t.Fatal(err)
		}
		victim := buildVictim(t, w)
		phys := w.Plat.Machine.Phys
		pa := phys.SecurePageBase(int(victim.Data[len(victim.Data)-1]) + monitor.ReservedPages)
		if err := phys.Write(pa, secret, mem.Secure); err != nil {
			t.Fatal(err)
		}
		snooped, err := phys.SnoopDRAM(pa)
		switch variant {
		case mem.ProtFilter:
			// Physical attacks are out of scope under the filter — the
			// snoop sees plaintext, as §3.2 concedes for such platforms.
			if err != nil || snooped != secret {
				t.Fatalf("filter: snoop = %#x, %v", snooped, err)
			}
		case mem.ProtEncrypt:
			if err != nil {
				t.Fatal(err)
			}
			if snooped == secret {
				t.Fatal("encryption engine leaked plaintext to the bus")
			}
			// Tampering is detected on the enclave's next access.
			if err := phys.TamperDRAM(pa, snooped^0xffffffff); err != nil {
				t.Fatal(err)
			}
			if _, err := phys.Read(pa, mem.Secure); !errors.Is(err, mem.ErrIntegrity) {
				t.Fatalf("tampering undetected: %v", err)
			}
		case mem.ProtScratchpad:
			if !errors.Is(err, mem.ErrShielded) {
				t.Fatalf("scratchpad physically accessible: %v", err)
			}
		}
	}
}

func TestAttackSpareChannelIsExactlyAsSpecified(t *testing.T) {
	// §6.2: the OS "may infer that spare pages have been allocated (since
	// attempts to remove them will fail), but it cannot tell whether the
	// enclave has used them as data or page-table pages."
	pair, err := NewPair(37, board.Config{})
	if err != nil {
		t.Fatal(err)
	}
	imgD, _ := kasm.DynAlloc().Image()
	dataUser, err := pair.BuildBoth(imgD)
	if err != nil {
		t.Fatal(err)
	}
	// World A's enclave consumes its spare as a DATA page; world B's
	// consumes its spare as a PAGE TABLE (same spare page number). The
	// two enclaves differ in code, so poke the same code into both and
	// instead drive the difference through the guest argument? Guests are
	// fixed code — use two different guests but compare only the spare
	// page's OS-visible behaviour, which must be identical.
	imgT, _ := l2UserImage(t)
	tableUser, err := pair.BuildBoth(imgT)
	if err != nil {
		t.Fatal(err)
	}
	// Run both converters in both worlds (keeping the pair in lockstep).
	for _, w := range []*World{pair.A, pair.B} {
		if e, _, err := w.OS.Enter(dataUser, uint32(dataUser.Spares[0])); err != nil || e != kapi.ErrSuccess {
			t.Fatal(err, e)
		}
		if e, _, err := w.OS.Enter(tableUser, uint32(tableUser.Spares[0])); err != nil || e != kapi.ErrSuccess {
			t.Fatal(err, e)
		}
	}
	// The OS-visible behaviour of the two consumed spares is identical:
	// Remove fails with the same error for the data page and the page
	// table — the §6.2 channel reveals consumption, not purpose.
	for _, w := range []*World{pair.A} {
		eData, _, _ := w.Chk.SMC(kapi.SMCRemove, uint32(dataUser.Spares[0]))
		eTable, _, _ := w.Chk.SMC(kapi.SMCRemove, uint32(tableUser.Spares[0]))
		if eData != eTable || eData != kapi.ErrNotStopped {
			t.Fatalf("spare purpose distinguishable: data=%v table=%v", eData, eTable)
		}
	}
}

// l2UserImage builds a guest that converts its spare into an L2 page table
// (SvcInitL2PTable) and exits.
func l2UserImage(t *testing.T) (img nwos.Image, err error) {
	t.Helper()
	return kasm.L2User().Image()
}
