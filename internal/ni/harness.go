package ni

import (
	"fmt"

	"repro/internal/board"
	"repro/internal/mem"
	"repro/internal/monitor"
	"repro/internal/nwos"
	"repro/internal/pagedb"
	"repro/internal/refine"
)

// World is one side of a bisimulation pair: a booted platform with the OS
// model wired through the refinement checker.
type World struct {
	Plat *board.Platform
	Chk  *refine.Checker
	OS   *nwos.OS
}

// NewWorld boots a platform for bisimulation. Both sides of a pair use the
// same seed: §6.3 requires the nondeterminism seeds be equal so that
// observer-enclave executions are deterministic across the pair.
func NewWorld(seed uint64, cfg board.Config) (*World, error) {
	cfg.Seed = seed
	plat, err := board.Boot(cfg)
	if err != nil {
		return nil, err
	}
	chk := refine.New(plat.Monitor)
	return &World{
		Plat: plat,
		Chk:  chk,
		OS:   nwos.New(plat.Machine, chk, plat.Monitor.NPages()),
	}, nil
}

// Pair is two worlds that differ only in enclave secrets; the bisimulation
// runs identical adversary actions on both.
type Pair struct {
	A, B *World
}

// NewPair boots two identically-seeded worlds.
func NewPair(seed uint64, cfg board.Config) (*Pair, error) {
	a, err := NewWorld(seed, cfg)
	if err != nil {
		return nil, err
	}
	b, err := NewWorld(seed, cfg)
	if err != nil {
		return nil, err
	}
	return &Pair{A: a, B: b}, nil
}

// Step runs the same adversary action on both worlds and requires the
// adversary-visible outcome (whatever the action returns) to be equal —
// the "public outputs are determined purely by public inputs" half of
// noninterference, applied per transition point (§6.1).
func (p *Pair) Step(name string, action func(w *World) ([]uint32, error)) error {
	outA, errA := action(p.A)
	outB, errB := action(p.B)
	if (errA == nil) != (errB == nil) {
		return fmt.Errorf("ni: step %q: one side errored: %v / %v", name, errA, errB)
	}
	if errA != nil {
		// Both failed — failure text must not depend on secrets either,
		// but Go error strings may embed addresses; compare presence only.
		return nil
	}
	if len(outA) != len(outB) {
		return fmt.Errorf("ni: step %q: output lengths differ", name)
	}
	for i := range outA {
		if outA[i] != outB[i] {
			return fmt.Errorf("ni: step %q: output %d differs: %#x vs %#x — secret leaked", name, i, outA[i], outB[i])
		}
	}
	return nil
}

// PokeSecret writes different values into the victim enclave's data page
// in the two worlds — instantiating the havoc that distinguishes the pair.
// The resulting states are ≈adv-related for any observer other than the
// victim: data-page contents are invisible outside the owner (Def. 1).
func (p *Pair) PokeSecret(page pagedb.PageNr, secretA, secretB uint32) error {
	if err := pokePage(p.A.Plat, page, secretA); err != nil {
		return err
	}
	return pokePage(p.B.Plat, page, secretB)
}

func pokePage(plat *board.Platform, page pagedb.PageNr, val uint32) error {
	base := plat.Machine.Phys.SecurePageBase(int(page) + monitor.ReservedPages)
	for off := uint32(0); off < 64; off += 4 {
		if err := plat.Machine.Phys.Write(base+off, val^off, mem.Secure); err != nil {
			return err
		}
	}
	return nil
}

// CheckAdv asserts the two worlds are ≈adv-related from the perspective of
// colluding enclave enc (Theorem 6.1, confidentiality direction).
func (p *Pair) CheckAdv(enc pagedb.PageNr) error {
	d1, err := p.A.Plat.Monitor.DecodePageDB()
	if err != nil {
		return err
	}
	d2, err := p.B.Plat.Monitor.DecodePageDB()
	if err != nil {
		return err
	}
	m1 := ObserveMachine(p.A.Plat.Machine)
	m2 := ObserveMachine(p.B.Plat.Machine)
	return AdvEquivalent(m1, d1, m2, d2, enc)
}

// CheckEnc asserts the two worlds are ≈enc-related from the perspective of
// trusted enclave enc (Theorem 6.1, integrity direction: everything the
// enclave can see — in particular its own pages — is equal).
func (p *Pair) CheckEnc(enc pagedb.PageNr) error {
	d1, err := p.A.Plat.Monitor.DecodePageDB()
	if err != nil {
		return err
	}
	d2, err := p.B.Plat.Monitor.DecodePageDB()
	if err != nil {
		return err
	}
	return ObsEquivalent(d1, d2, enc)
}

// BuildBoth builds the same enclave image in both worlds and requires the
// handles to agree (same page numbering — guaranteed by the deterministic
// OS allocator).
func (p *Pair) BuildBoth(img nwos.Image) (*nwos.Enclave, error) {
	ea, err := p.A.OS.BuildEnclave(img)
	if err != nil {
		return nil, err
	}
	eb, err := p.B.OS.BuildEnclave(img)
	if err != nil {
		return nil, err
	}
	if ea.AS != eb.AS || ea.Thread != eb.Thread {
		return nil, fmt.Errorf("ni: paired builds diverged: %v vs %v", ea, eb)
	}
	return ea, nil
}
