package ni

import (
	"strings"
	"testing"

	"repro/internal/board"
	"repro/internal/kapi"
	"repro/internal/kasm"
	"repro/internal/nwos"
	"repro/internal/pagedb"
)

// buildGuest assembles a kasm guest for a pair.
func buildGuest(t *testing.T, p *Pair, g kasm.Guest) *nwos.Enclave {
	t.Helper()
	img, err := g.Image()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := p.BuildBoth(img)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// TestConfidentialityBisimulation is the confidentiality half of
// Theorem 6.1, concretely: two identically-seeded platforms that differ
// only in a victim enclave's secret data stay ≈adv-equivalent (observer: a
// colluding enclave plus the OS) across an adversarial action sequence.
func TestConfidentialityBisimulation(t *testing.T) {
	pair, err := NewPair(11, board.Config{})
	if err != nil {
		t.Fatal(err)
	}
	victim := buildGuest(t, pair, kasm.ComputeOnSecret())
	colluder := buildGuest(t, pair, kasm.Colluder())

	// Instantiate the havoc: the victim's data page differs between the
	// worlds. (The data page is the last MapSecure'd page of the victim.)
	secretPage := victim.Data[len(victim.Data)-1]
	if err := pair.PokeSecret(secretPage, 0x1111_1111, 0x2222_2222); err != nil {
		t.Fatal(err)
	}
	checkpoint := func(step string) {
		t.Helper()
		if err := pair.CheckAdv(colluder.AS); err != nil {
			t.Fatalf("after %s: %v", step, err)
		}
	}
	checkpoint("poke")

	// 1. Run the victim: it computes on its secret. Exit value is
	// secret-independent by construction; everything else must be too.
	if err := pair.Step("enter-victim", func(w *World) ([]uint32, error) {
		e, v, err := w.OS.Enter(victim)
		return []uint32{uint32(e), v}, err
	}); err != nil {
		t.Fatal(err)
	}
	checkpoint("enter-victim")

	// 2. Run the colluding enclave: it observes everything it can.
	if err := pair.Step("enter-colluder", func(w *World) ([]uint32, error) {
		e, v, err := w.OS.Enter(colluder)
		return []uint32{uint32(e), v}, err
	}); err != nil {
		t.Fatal(err)
	}
	checkpoint("enter-colluder")

	// 3. Interrupt the victim mid-execution: the suspended context holds
	// secret-laden registers, saved in the thread page — invisible.
	if err := pair.Step("interrupt-victim", func(w *World) ([]uint32, error) {
		w.Plat.Machine.ScheduleIRQ(20)
		e, v, err := w.OS.Enter(victim)
		return []uint32{uint32(e), v}, err
	}); err != nil {
		t.Fatal(err)
	}
	checkpoint("interrupt-victim")
	if err := pair.Step("resume-victim", func(w *World) ([]uint32, error) {
		e, v, err := w.OS.Resume(victim)
		return []uint32{uint32(e), v}, err
	}); err != nil {
		t.Fatal(err)
	}
	checkpoint("resume-victim")

	// 4. OS pokes at the API: allocations, failed removals, queries.
	if err := pair.Step("os-probes", func(w *World) ([]uint32, error) {
		var out []uint32
		e, v, _ := w.Chk.SMC(kapi.SMCGetPhysPages)
		out = append(out, uint32(e), v)
		// Remove of a victim data page must fail identically.
		e, v, _ = w.Chk.SMC(kapi.SMCRemove, uint32(secretPage))
		out = append(out, uint32(e), v)
		// Spare games with the colluder.
		sp, _ := w.OS.AllocPage()
		e, v, _ = w.Chk.SMC(kapi.SMCAllocSpare, uint32(colluder.AS), uint32(sp))
		out = append(out, uint32(e), v)
		e, v, _ = w.Chk.SMC(kapi.SMCRemove, uint32(sp))
		out = append(out, uint32(e), v)
		w.OS.ReleasePage(sp)
		return out, nil
	}); err != nil {
		t.Fatal(err)
	}
	checkpoint("os-probes")

	// 5. Tear the victim down; freed pages are scrubbed, so even Remove
	// must not expose the secret.
	if err := pair.Step("destroy-victim", func(w *World) ([]uint32, error) {
		return nil, w.OS.Destroy(victim)
	}); err != nil {
		t.Fatal(err)
	}
	checkpoint("destroy-victim")
}

// TestExitValueDeclassification confirms the harness detects leaks through
// the one channel that permits them: an enclave choosing to Exit with its
// secret (§6.2 "the return value passed to Exit" is declassified).
func TestExitValueDeclassification(t *testing.T) {
	pair, err := NewPair(13, board.Config{})
	if err != nil {
		t.Fatal(err)
	}
	victim := buildGuest(t, pair, kasm.LeakSecretValue())
	secretPage := victim.Data[len(victim.Data)-1]
	if err := pair.PokeSecret(secretPage, 0xaaaa, 0xbbbb); err != nil {
		t.Fatal(err)
	}
	err = pair.Step("leak-exit", func(w *World) ([]uint32, error) {
		e, v, err := w.OS.Enter(victim)
		return []uint32{uint32(e), v}, err
	})
	if err == nil {
		t.Fatal("exit-value leak not detected by harness")
	}
	if !strings.Contains(err.Error(), "secret leaked") {
		t.Fatalf("unexpected failure: %v", err)
	}
}

// TestSharedMemoryDeclassification: likewise for an enclave that writes
// its secret to insecure shared memory.
func TestSharedMemoryDeclassification(t *testing.T) {
	pair, err := NewPair(17, board.Config{})
	if err != nil {
		t.Fatal(err)
	}
	victim := buildGuest(t, pair, kasm.LeakViaSharedMemory())
	secretPage := victim.Data[len(victim.Data)-1]
	if err := pair.PokeSecret(secretPage, 0xaaaa, 0xbbbb); err != nil {
		t.Fatal(err)
	}
	if err := pair.Step("leak-shared", func(w *World) ([]uint32, error) {
		e, v, err := w.OS.Enter(victim)
		return []uint32{uint32(e), v}, err
	}); err != nil {
		t.Fatal(err) // the exit value itself is constant
	}
	// But the insecure memory now differs: ≈adv must fail, showing the
	// only way secrets escape is the enclave's own insecure writes.
	if err := pair.CheckAdv(pagedb.PageNr(0)); err == nil {
		t.Fatal("insecure-memory leak not detected")
	}
}

// TestIntegrityBisimulation is the integrity half of Theorem 6.1: runs
// that differ only in untrusted inputs (insecure memory, another enclave's
// data) leave the trusted enclave's state identical.
func TestIntegrityBisimulation(t *testing.T) {
	pair, err := NewPair(19, board.Config{})
	if err != nil {
		t.Fatal(err)
	}
	trusted := buildGuest(t, pair, kasm.IntegrityVictim())
	untrusted := buildGuest(t, pair, kasm.UntrustedReader())

	// The pair differs in attacker-controlled insecure memory...
	if err := pair.A.OS.WriteInsecure(untrusted.SharedPA[0], []uint32{0x1001}); err != nil {
		t.Fatal(err)
	}
	if err := pair.B.OS.WriteInsecure(untrusted.SharedPA[0], []uint32{0x2002}); err != nil {
		t.Fatal(err)
	}
	// ...and in the untrusted enclave's private data.
	if err := pair.PokeSecret(untrusted.Data[len(untrusted.Data)-1], 3, 4); err != nil {
		t.Fatal(err)
	}
	checkpoint := func(step string) {
		t.Helper()
		if err := pair.CheckEnc(trusted.AS); err != nil {
			t.Fatalf("after %s: trusted enclave influenced: %v", step, err)
		}
	}
	checkpoint("setup")

	// Untrusted activity: the reader consumes the differing inputs. Its
	// own outputs may differ — integrity says the trusted enclave's state
	// may not.
	for _, w := range []*World{pair.A, pair.B} {
		if _, _, err := w.OS.Enter(untrusted); err != nil {
			t.Fatal(err)
		}
	}
	checkpoint("untrusted-run")

	// Run the trusted enclave in both worlds: its behaviour and state
	// must be identical.
	eA, vA, errA := pair.A.OS.Enter(trusted)
	eB, vB, errB := pair.B.OS.Enter(trusted)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if eA != eB || vA != vB {
		t.Fatalf("trusted enclave behaviour diverged: (%v,%d) vs (%v,%d)", eA, vA, eB, vB)
	}
	checkpoint("trusted-run")

	// Hostile SMC probes against the trusted enclave's pages.
	for _, w := range []*World{pair.A, pair.B} {
		w.Chk.SMC(kapi.SMCRemove, uint32(trusted.Data[0]))       // must fail
		w.Chk.SMC(kapi.SMCInitThread, uint32(trusted.AS), 40, 0) // already final
		w.Chk.SMC(kapi.SMCMapInsecure, uint32(trusted.AS),
			uint32(kapi.NewMapping(0x40000, true, false)), w.Plat.Machine.Phys.Layout().InsecureBase)
	}
	checkpoint("hostile-smcs")
}

// TestVictimSecretsSurviveAdversarialTrace drives a longer randomized-but-
// deterministic adversarial schedule and checks ≈adv at every transition
// point, mirroring the proof's structure of per-SMC bisimulation lemmas
// composed over "an infinite sequence of SMCs" (§6.1).
func TestVictimSecretsSurviveAdversarialTrace(t *testing.T) {
	pair, err := NewPair(23, board.Config{})
	if err != nil {
		t.Fatal(err)
	}
	victim := buildGuest(t, pair, kasm.ComputeOnSecret())
	colluder := buildGuest(t, pair, kasm.Colluder())
	secretPage := victim.Data[len(victim.Data)-1]
	if err := pair.PokeSecret(secretPage, 0xdec0de, 0x0ddba11); err != nil {
		t.Fatal(err)
	}

	// A deterministic schedule mixing entry, interrupts, dynamic memory,
	// and API abuse.
	type action func(w *World) ([]uint32, error)
	schedule := []struct {
		name string
		act  action
	}{
		{"phys", func(w *World) ([]uint32, error) {
			e, v, err := w.Chk.SMC(kapi.SMCGetPhysPages)
			return []uint32{uint32(e), v}, err
		}},
		{"victim", func(w *World) ([]uint32, error) {
			e, v, err := w.OS.Enter(victim)
			return []uint32{uint32(e), v}, err
		}},
		{"irq-victim", func(w *World) ([]uint32, error) {
			w.Plat.Machine.ScheduleIRQ(15)
			e, v, err := w.OS.Enter(victim)
			return []uint32{uint32(e), v}, err
		}},
		{"colluder", func(w *World) ([]uint32, error) {
			e, v, err := w.OS.Enter(colluder)
			return []uint32{uint32(e), v}, err
		}},
		{"resume", func(w *World) ([]uint32, error) {
			e, v, err := w.OS.Resume(victim)
			return []uint32{uint32(e), v}, err
		}},
		{"remove-victim-page", func(w *World) ([]uint32, error) {
			e, v, err := w.Chk.SMC(kapi.SMCRemove, uint32(secretPage))
			return []uint32{uint32(e), v}, err
		}},
		{"stop-victim", func(w *World) ([]uint32, error) {
			e, v, err := w.Chk.SMC(kapi.SMCStop, uint32(victim.AS))
			return []uint32{uint32(e), v}, err
		}},
		{"remove-after-stop", func(w *World) ([]uint32, error) {
			e, v, err := w.Chk.SMC(kapi.SMCRemove, uint32(secretPage))
			return []uint32{uint32(e), v}, err
		}},
		{"enter-stopped", func(w *World) ([]uint32, error) {
			e, v, err := w.OS.Enter(victim)
			return []uint32{uint32(e), v}, err
		}},
	}
	for _, s := range schedule {
		if err := pair.Step(s.name, s.act); err != nil {
			t.Fatalf("step %s: %v", s.name, err)
		}
		if err := pair.CheckAdv(colluder.AS); err != nil {
			t.Fatalf("after %s: %v", s.name, err)
		}
	}
}
