package ni

// Noninterference stance of sealed checkpoints (docs/SEALING.md): a
// checkpoint blob leaves the TCB through insecure memory, so it is a
// declassification point — by design, declassification-by-encryption.
// The observable part of the blob (header, measurement, nonce, length)
// must be identical across secret-differing worlds; only the ciphertext
// and tag may depend on the secret, and they are indistinguishable from
// random without the sealing key.

import (
	"testing"

	"repro/internal/board"
	"repro/internal/kapi"
	"repro/internal/kasm"
	"repro/internal/seal"
)

func TestCheckpointBlobDeclassification(t *testing.T) {
	p, err := NewPair(41, board.Config{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := kasm.ComputeOnSecret().Image()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := p.BuildBoth(img)
	if err != nil {
		t.Fatal(err)
	}
	// The two worlds now differ only in the victim's data-page secret.
	if err := p.PokeSecret(enc.Data[0], 0x5ec_a, 0x5ec_b); err != nil {
		t.Fatal(err)
	}

	blobA, manA, err := p.A.OS.CheckpointEnclave(enc)
	if err != nil {
		t.Fatal(err)
	}
	blobB, manB, err := p.B.OS.CheckpointEnclave(enc)
	if err != nil {
		t.Fatal(err)
	}

	// Public outputs first: identical lengths and manifests — the blob's
	// shape reveals page counts, never page contents.
	if len(blobA) != len(blobB) {
		t.Fatalf("blob lengths differ: %d vs %d — shape leaked a secret", len(blobA), len(blobB))
	}
	if manA.NumPages != manB.NumPages || manA.L1 != manB.L1 {
		t.Fatalf("manifests differ: %+v vs %+v", manA, manB)
	}
	// The clear header (magic, version, kind, length, measurement, nonce)
	// must be word-for-word equal: both enclaves have the same measurement
	// and the identically-seeded monitors drew the same nonce.
	for i := 0; i < seal.HeaderWords; i++ {
		if blobA[i] != blobB[i] {
			t.Fatalf("header word %d differs: %#x vs %#x — secret leaked in clear", i, blobA[i], blobB[i])
		}
	}
	// The secret-bearing part must actually differ — otherwise the test
	// proves nothing (and the data page would not be in the image).
	differs := false
	for i := seal.HeaderWords; i < len(blobA); i++ {
		if blobA[i] != blobB[i] {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("ciphertexts identical across secret-differing worlds — secret not in image?")
	}

	// The checkpoint wrote only to insecure memory and left the PageDB
	// untouched and valid.
	dA, err := p.A.Plat.Monitor.DecodePageDB()
	if err != nil {
		t.Fatal(err)
	}
	if err := dA.Validate(); err != nil {
		t.Fatal(err)
	}

	// Each blob restores in its own world (the keys match) and the clone
	// carries its world's secret forward.
	cloneA, err := p.A.OS.RestoreEnclave(blobA, manA)
	if err != nil {
		t.Fatal(err)
	}
	cloneB, err := p.B.OS.RestoreEnclave(blobB, manB)
	if err != nil {
		t.Fatal(err)
	}
	if cloneA.AS != cloneB.AS {
		t.Fatalf("restores diverged: %v vs %v", cloneA.AS, cloneB.AS)
	}
	// Cross-world swap still opens (same boot secret by construction —
	// identical seeds model a shared class key), but a world with a
	// different secret cannot: covered by TestCrossBoardMigration in
	// internal/refine.
	if p.A.Chk.Failures+p.B.Chk.Failures != 0 {
		t.Fatalf("refinement failures: %d/%d", p.A.Chk.Failures, p.B.Chk.Failures)
	}
}

// TestSealKeyIsEnclaveSecret: the EGETKEY-analogue SVC returns the same
// key in both worlds (it depends only on measurement and boot secret,
// both public-equal across the pair) — so the sealing key itself cannot
// act as a covert channel between secret-differing runs.
func TestSealKeyIsEnclaveSecret(t *testing.T) {
	p, err := NewPair(43, board.Config{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := kasm.SealKeyToShared().Image()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := p.BuildBoth(img)
	if err != nil {
		t.Fatal(err)
	}
	err = p.Step("get-seal-key", func(w *World) ([]uint32, error) {
		if e, _, err := w.OS.Enter(enc); err != nil || e != kapi.ErrSuccess {
			return nil, err
		}
		return w.OS.ReadInsecure(enc.SharedPA[0], 8)
	})
	if err != nil {
		t.Fatal(err)
	}
}
