package ni

import (
	"testing"

	"repro/internal/pagedb"
)

// fixture: two enclaves — observer (pages 0..4) and victim (pages 5..9).
func fixture() *pagedb.DB {
	d := pagedb.New(16)
	mk := func(as, l1, l2, data, thr pagedb.PageNr) {
		d.Pages[as] = pagedb.Entry{Type: pagedb.TypeAddrspace, Owner: as, AS: &pagedb.Addrspace{
			State: pagedb.ASFinal, L1PT: l1, L1PTSet: true, RefCount: 4,
		}}
		l1p := &pagedb.L1PT{}
		l1p.Present[0] = true
		l1p.L2[0] = l2
		d.Pages[l1] = pagedb.Entry{Type: pagedb.TypeL1PT, Owner: as, L1: l1p}
		l2p := &pagedb.L2PT{}
		l2p.Entries[0] = pagedb.L2Entry{Valid: true, Secure: true, Page: data, Write: true}
		d.Pages[l2] = pagedb.Entry{Type: pagedb.TypeL2PT, Owner: as, L2: l2p}
		d.Pages[data] = pagedb.Entry{Type: pagedb.TypeData, Owner: as, Data: &pagedb.Data{}}
		d.Pages[thr] = pagedb.Entry{Type: pagedb.TypeThread, Owner: as, Thread: &pagedb.Thread{}}
	}
	mk(0, 1, 2, 3, 4)
	mk(5, 6, 7, 8, 9)
	return d
}

func TestObsEquivalentReflexive(t *testing.T) {
	d := fixture()
	if err := ObsEquivalent(d, d.Clone(), 0); err != nil {
		t.Fatal(err)
	}
}

func TestVictimDataInvisibleToObserver(t *testing.T) {
	// Changing the victim's data-page contents preserves ≈enc for the
	// observer (Def. 1: data pages are weakly equal by type alone).
	d1 := fixture()
	d2 := d1.Clone()
	d2.Get(8).Data.Contents[0] = 0x5ec2e7
	if err := ObsEquivalent(d1, d2, 0); err != nil {
		t.Fatalf("victim secret visible to observer: %v", err)
	}
}

func TestVictimThreadCtxInvisible(t *testing.T) {
	d1 := fixture()
	d2 := d1.Clone()
	d2.Get(9).Thread.Ctx.R[0] = 0xdead
	d2.Get(9).Thread.Ctx.PC = 0x1234
	if err := ObsEquivalent(d1, d2, 0); err != nil {
		t.Fatalf("victim thread context visible: %v", err)
	}
}

func TestEnteredFlagIsVisible(t *testing.T) {
	// The entered flag IS observable (the OS must know it to Resume).
	d1 := fixture()
	d2 := d1.Clone()
	d2.Get(9).Thread.Entered = true
	if err := ObsEquivalent(d1, d2, 0); err == nil {
		t.Fatal("entered-flag divergence not detected")
	}
}

func TestObserverPagesMustBeExactlyEqual(t *testing.T) {
	d1 := fixture()
	d2 := d1.Clone()
	d2.Get(3).Data.Contents[0] = 1 // observer's own page
	if err := ObsEquivalent(d1, d2, 0); err == nil {
		t.Fatal("observer page divergence not detected")
	}
}

func TestFreeSetMustAgree(t *testing.T) {
	d1 := fixture()
	d2 := d1.Clone()
	d2.Pages[12] = pagedb.Entry{Type: pagedb.TypeSpare, Owner: 5}
	d2.Get(5).AS.RefCount++
	if err := ObsEquivalent(d1, d2, 0); err == nil {
		t.Fatal("free-set divergence not detected")
	}
}

func TestSpareVsDataWeaklyDistinguishable(t *testing.T) {
	// A spare that became a data page is observable as a type change —
	// the declassified dynamic-memory side channel (§6.2).
	d1 := fixture()
	d1.Pages[12] = pagedb.Entry{Type: pagedb.TypeSpare, Owner: 5}
	d1.Get(5).AS.RefCount++
	d2 := d1.Clone()
	d2.Pages[12] = pagedb.Entry{Type: pagedb.TypeData, Owner: 5, Data: &pagedb.Data{}}
	if err := ObsEquivalent(d1, d2, 0); err == nil {
		t.Fatal("spare->data type change not observable")
	}
}

func TestPageTableStructureIsObservable(t *testing.T) {
	// Page-table pages compare exactly under =enc (Def. 1): their
	// structure is adversary-visible metadata.
	d1 := fixture()
	d2 := d1.Clone()
	d2.Get(7).L2.Entries[1] = pagedb.L2Entry{Valid: true, Secure: true, Page: 8}
	if err := ObsEquivalent(d1, d2, 0); err == nil {
		t.Fatal("L2 table divergence not detected")
	}
}

func TestMeasurementIsObservable(t *testing.T) {
	d1 := fixture()
	d2 := d1.Clone()
	d2.Get(5).AS.Measured[0] ^= 1
	if err := ObsEquivalent(d1, d2, 0); err == nil {
		t.Fatal("measurement divergence not detected")
	}
}

func TestWeakEqualTypeMismatch(t *testing.T) {
	e1 := &pagedb.Entry{Type: pagedb.TypeData, Data: &pagedb.Data{}}
	e2 := &pagedb.Entry{Type: pagedb.TypeSpare}
	if WeakEqual(e1, e2) {
		t.Fatal("data ~ spare")
	}
	e3 := &pagedb.Entry{Type: pagedb.TypeData, Data: &pagedb.Data{}}
	e3.Data.Contents[0] = 99
	if !WeakEqual(e1, e3) {
		t.Fatal("data pages with different contents must be weakly equal")
	}
}
