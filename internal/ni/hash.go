package ni

import "repro/internal/sha2"

// hasher wraps the repo's SHA-256 for digesting large observations.
type hasher struct{ h *sha2.Hash }

func newHasher() hasher               { return hasher{h: sha2.New()} }
func (h hasher) Write(p []byte)       { h.h.Write(p) }
func (h hasher) Sum() [sha2.Size]byte { return h.h.Sum() }
