package ni

import (
	"testing"

	"repro/internal/board"
	"repro/internal/kapi"
	"repro/internal/kasm"
	"repro/internal/pagedb"
)

// TestForkBisimulation strengthens the paired-boot bisimulation using
// machine snapshots: ONE platform is built and run up to the point where
// the secret is introduced, then forked. The two branches share a
// bit-identical prefix by construction, so any post-fork divergence in
// adversary-visible state is attributable purely to the secret.
func TestForkBisimulation(t *testing.T) {
	w, err := NewWorld(51, board.Config{})
	if err != nil {
		t.Fatal(err)
	}
	vImg, _ := kasm.ComputeOnSecret().Image()
	victim, err := w.OS.BuildEnclave(vImg)
	if err != nil {
		t.Fatal(err)
	}
	cImg, _ := kasm.Colluder().Image()
	colluder, err := w.OS.BuildEnclave(cImg)
	if err != nil {
		t.Fatal(err)
	}
	fork := w.Plat.Machine.Snapshot()
	secretPage := victim.Data[len(victim.Data)-1]

	// Branch runner: restore the fork, poke a secret, run the adversary
	// schedule, return the observations.
	branch := func(secret uint32) ([]uint32, MachineObs, *pagedb.DB) {
		if err := w.Plat.Machine.Restore(fork); err != nil {
			t.Fatal(err)
		}
		if err := pokePage(w.Plat, secretPage, secret); err != nil {
			t.Fatal(err)
		}
		var outs []uint32
		obs := func(e kapi.Err, v uint32, err error) {
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, uint32(e), v)
		}
		obs(w.OS.Enter(victim))
		obs(w.OS.Enter(colluder))
		w.Plat.Machine.ScheduleIRQ(15)
		obs(w.OS.Enter(victim))
		obs(w.OS.Resume(victim))
		obs(w.Chk.SMC(kapi.SMCRemove, uint32(secretPage)))
		obs(w.Chk.SMC(kapi.SMCGetPhysPages))
		m := ObserveMachine(w.Plat.Machine)
		db, err := w.Plat.Monitor.DecodePageDB()
		if err != nil {
			t.Fatal(err)
		}
		return outs, m, db
	}

	o1, m1, d1 := branch(0x5ec1)
	o2, m2, d2 := branch(0x5ec2)
	if len(o1) != len(o2) {
		t.Fatal("observation lengths differ")
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("observation %d differs: %#x vs %#x — secret leaked", i, o1[i], o2[i])
		}
	}
	if err := AdvEquivalent(m1, d1, m2, d2, colluder.AS); err != nil {
		t.Fatalf("fork branches not ≈adv: %v", err)
	}
}
