package ni

import (
	"testing"

	"repro/internal/board"
	"repro/internal/kasm"
	"repro/internal/monitor"
	"repro/internal/nwos"
)

// TestConfidentialityUnderOptimisedCrossing re-runs the confidentiality
// bisimulation with the §8.1 crossing optimisations enabled. The skip-
// flush fast path's decision (flush or not) depends only on public state
// (which enclave ran last, whether page tables changed), so secret-
// differing twins must make identical decisions and remain ≈adv — the
// "proof" the paper wanted before shipping the optimisation.
func TestConfidentialityUnderOptimisedCrossing(t *testing.T) {
	cfg := board.Config{Monitor: monitor.Config{Optimised: true}}
	pair, err := NewPair(71, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vImg, _ := kasm.ComputeOnSecret().Image()
	victim, err := pair.BuildBoth(vImg)
	if err != nil {
		t.Fatal(err)
	}
	cImg, _ := kasm.Colluder().Image()
	colluder, err := pair.BuildBoth(cImg)
	if err != nil {
		t.Fatal(err)
	}
	secretPage := victim.Data[len(victim.Data)-1]
	if err := pair.PokeSecret(secretPage, 0x0f1e2d3c, 0x4b5a6978); err != nil {
		t.Fatal(err)
	}

	// A schedule that exercises the fast path (repeated same-enclave
	// crossings) and its misses (alternation).
	steps := []struct {
		name string
		act  func(w *World) ([]uint32, error)
	}{
		{"victim-1", enterOf(victim)},
		{"victim-2-hot", enterOf(victim)}, // fast path taken
		{"victim-3-hot", enterOf(victim)},
		{"colluder-cold", enterOf(colluder)}, // fast path missed
		{"victim-4-cold", enterOf(victim)},
		{"colluder-again", enterOf(colluder)},
	}
	for _, s := range steps {
		if err := pair.Step(s.name, s.act); err != nil {
			t.Fatalf("step %s: %v", s.name, err)
		}
		if err := pair.CheckAdv(colluder.AS); err != nil {
			t.Fatalf("after %s: %v", s.name, err)
		}
	}
}

func enterOf(enc *nwos.Enclave) func(w *World) ([]uint32, error) {
	return func(w *World) ([]uint32, error) {
		e, v, err := w.OS.Enter(enc)
		return []uint32{uint32(e), v}, err
	}
}
