package ni

import (
	"testing"

	"repro/internal/board"
	"repro/internal/kasm"
	"repro/internal/mem"
	"repro/internal/monitor"
)

// TestModelLimitationDeterministicEncryption documents — as a test — a
// known limitation of the simulated encryption engine: its keystream is
// deterministic per address, so a *physical* attacker snapshotting DRAM
// before and after can detect whether a secure word changed (equality
// leakage), even though values remain hidden. Real engines mix in
// per-write tweaks/counters. The paper's ≈adv adversary does not include
// physical snooping (hardware protection handles it, §3.2), so Theorem 6.1
// is unaffected — but the model's boundary is worth pinning.
func TestModelLimitationDeterministicEncryption(t *testing.T) {
	w, err := NewWorld(61, board.Config{Protection: mem.ProtEncrypt})
	if err != nil {
		t.Fatal(err)
	}
	img, _ := kasm.ComputeOnSecret().Image()
	enc, err := w.OS.BuildEnclave(img)
	if err != nil {
		t.Fatal(err)
	}
	phys := w.Plat.Machine.Phys
	pa := phys.SecurePageBase(int(enc.Data[len(enc.Data)-1]) + monitor.ReservedPages)

	phys.Write(pa, 0x1111, mem.Secure)
	snap1, err := phys.SnoopDRAM(pa)
	if err != nil {
		t.Fatal(err)
	}
	// Values are hidden...
	if snap1 == 0x1111 {
		t.Fatal("plaintext visible under the encryption engine")
	}
	// ...but a rewrite of the SAME value produces the SAME ciphertext:
	// the equality channel this model accepts.
	phys.Write(pa, 0x1111, mem.Secure)
	snap2, _ := phys.SnoopDRAM(pa)
	if snap1 != snap2 {
		t.Fatal("unexpected: engine is randomized (update this test and the docs)")
	}
	// A different value produces different ciphertext — change detection
	// is possible for the physical attacker.
	phys.Write(pa, 0x2222, mem.Secure)
	snap3, _ := phys.SnoopDRAM(pa)
	if snap3 == snap1 {
		t.Fatal("distinct plaintexts produced identical ciphertext")
	}
}
