package telemetry

import "testing"

func TestMergeSumsSeries(t *testing.T) {
	a := Snapshot{
		Cycles:  100,
		Retired: 40,
		SMC: []CallStats{
			{Call: 3, Name: "x", Count: 2, Cycles: 20, DispatchCycles: 5, BodyCycles: 15},
			{Call: 5, Name: "y", Count: 1, Cycles: 7},
		},
		Lifecycle:         map[string]uint64{"enter": 2},
		PageMoves:         map[string]uint64{"free_to_data": 3},
		InsnClasses:       map[string]uint64{"alu": 10},
		PageCensus:        map[string]int{"data": 4},
		TLB:               TLBStats{Hits: 10, Misses: 2, Entries: 3},
		Trace:             TraceStats{Recorded: 5, Dropped: 1, Capacity: 64},
		EnterSetupCycles:  200,
		ResumeSetupCycles: 50,
	}
	b := Snapshot{
		Cycles:  50,
		Retired: 10,
		SMC: []CallStats{
			{Call: 3, Name: "x", Count: 1, Cycles: 10, DispatchCycles: 2, BodyCycles: 8},
		},
		SVC:               []CallStats{{Call: 1, Name: "z", Count: 4, Cycles: 40}},
		Lifecycle:         map[string]uint64{"enter": 1, "exit": 1},
		EnterSetupCycles:  150,
		ResumeSetupCycles: 90,
	}
	m := Merge(a, b)
	if m.Cycles != 150 || m.Retired != 50 {
		t.Fatalf("gauges: %+v", m)
	}
	if len(m.SMC) != 2 {
		t.Fatalf("SMC series: %+v", m.SMC)
	}
	if m.SMC[0].Call != 3 || m.SMC[0].Count != 3 || m.SMC[0].Cycles != 30 ||
		m.SMC[0].DispatchCycles != 7 || m.SMC[0].BodyCycles != 23 {
		t.Fatalf("call 3 merge: %+v", m.SMC[0])
	}
	if m.SMC[1].Call != 5 || m.SMC[1].Count != 1 {
		t.Fatalf("call 5 merge: %+v", m.SMC[1])
	}
	if len(m.SVC) != 1 || m.SVC[0].Count != 4 {
		t.Fatalf("SVC merge: %+v", m.SVC)
	}
	if m.Lifecycle["enter"] != 3 || m.Lifecycle["exit"] != 1 {
		t.Fatalf("lifecycle merge: %+v", m.Lifecycle)
	}
	if m.PageMoves["free_to_data"] != 3 || m.InsnClasses["alu"] != 10 || m.PageCensus["data"] != 4 {
		t.Fatalf("map merge: %+v", m)
	}
	if m.TLB.Hits != 10 || m.TLB.Entries != 3 || m.Trace.Recorded != 5 {
		t.Fatalf("tlb/trace merge: %+v", m)
	}
	// Setup gauges report the latest single-platform measurement: max.
	if m.EnterSetupCycles != 200 || m.ResumeSetupCycles != 90 {
		t.Fatalf("setup gauges: %+v", m)
	}
}

// TestMergeDisjointCallSets pins merging snapshots whose SMC call sets do
// not overlap at all: every series must survive unchanged, ordered by
// call number, with nothing summed into the wrong slot.
func TestMergeDisjointCallSets(t *testing.T) {
	a := Snapshot{SMC: []CallStats{
		{Call: 9, Name: "late", Count: 4, Errors: 1, Cycles: 90, DispatchCycles: 30, BodyCycles: 60},
	}}
	b := Snapshot{SMC: []CallStats{
		{Call: 2, Name: "early", Count: 7, Cycles: 14, DispatchCycles: 4, BodyCycles: 10},
		{Call: 11, Name: "later", Count: 1, Cycles: 5, DispatchCycles: 5},
	}}
	m := Merge(a, b)
	if len(m.SMC) != 3 {
		t.Fatalf("disjoint merge lost or invented series: %+v", m.SMC)
	}
	for i, want := range []uint32{2, 9, 11} {
		if m.SMC[i].Call != want {
			t.Fatalf("series not in call order: %+v", m.SMC)
		}
	}
	for _, cs := range m.SMC {
		var src CallStats
		switch cs.Call {
		case 2:
			src = b.SMC[0]
		case 9:
			src = a.SMC[0]
		case 11:
			src = b.SMC[1]
		}
		if cs != src {
			t.Fatalf("disjoint series mutated: got %+v want %+v", cs, src)
		}
	}
}

// TestMergeSumsHistogramBuckets pins bucket-by-bucket histogram summation
// (the original merge test only covered scalar sums).
func TestMergeSumsHistogramBuckets(t *testing.T) {
	var ha, hb [NumHistBuckets]uint64
	ha[0], ha[5], ha[NumHistBuckets-1] = 1, 10, 3
	hb[5], hb[6] = 7, 2
	a := Snapshot{SMC: []CallStats{{Call: 4, Name: "x", Count: 14, Hist: ha}}}
	b := Snapshot{SMC: []CallStats{{Call: 4, Name: "x", Count: 9, Hist: hb}}}
	m := Merge(a, b)
	if len(m.SMC) != 1 || m.SMC[0].Count != 23 {
		t.Fatalf("merge: %+v", m.SMC)
	}
	got := m.SMC[0].Hist
	want := [NumHistBuckets]uint64{}
	want[0], want[5], want[6], want[NumHistBuckets-1] = 1, 17, 2, 3
	if got != want {
		t.Fatalf("bucket sums:\ngot  %v\nwant %v", got, want)
	}
	// Bucket totals must equal the merged count: no observation lost.
	var sum uint64
	for _, c := range got {
		sum += c
	}
	if sum != m.SMC[0].Count {
		t.Fatalf("histogram holds %d of %d observations", sum, m.SMC[0].Count)
	}
}

func TestMergeEmpty(t *testing.T) {
	m := Merge()
	if m.SMC != nil || m.SVC != nil || len(m.Lifecycle) != 0 {
		t.Fatalf("empty merge: %+v", m)
	}
}
