package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// Sink receives every boundary event as it is recorded. Implementations
// must be safe for concurrent Emit calls. The hot path calls Emit with a
// value Event, so a sink that does nothing costs only the interface call.
type Sink interface {
	Emit(Event)
}

// NopSink discards events. It is the default sink and must cost nothing
// measurable on the SMC hot path (BenchmarkTelemetryNopOverhead).
type NopSink struct{}

// Emit discards the event.
func (NopSink) Emit(Event) {}

// MemorySink accumulates every event in memory, unbounded — unlike the
// recorder's ring, which retains only a suffix. Intended for tests and
// short interactive runs.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (s *MemorySink) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Events returns a copy of everything received so far.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Len returns how many events were received.
func (s *MemorySink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// JSONLSink streams each event as one JSON object per line — the exchange
// format cmd/komodo-stats summarises. Writes are serialised; encoding
// errors are retained and reported by Err (Emit cannot fail). After the
// first error the sink stops writing, but keeps count: every event that
// could not be durably written — including the one that hit the error —
// shows up in Dropped, so a truncated stream is detectable rather than
// silently short.
type JSONLSink struct {
	mu      sync.Mutex
	enc     *json.Encoder
	err     error
	dropped uint64
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit writes the event as one JSON line.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	if s.err == nil {
		s.err = s.enc.Encode(jsonEvent(e))
	}
	if s.err != nil {
		s.dropped++
	}
	s.mu.Unlock()
}

// Err returns the first write/encode error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Dropped returns how many events were discarded because of an earlier
// write error (the event whose write failed counts too: a failed Encode
// may leave a torn line, so it is not durably written either).
func (s *JSONLSink) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// jsonEvent is the wire form of an Event: kind as its string name, plus
// a resolved call name where one exists, so the JSONL stream is readable
// without the binary's constant tables.
type jsonEvent Event

// MarshalJSON renders the event with symbolic kind and call names.
func (e jsonEvent) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Seq    uint64    `json:"seq"`
		Kind   string    `json:"kind"`
		Call   uint32    `json:"call"`
		Name   string    `json:"name,omitempty"`
		Args   [4]uint32 `json:"args"`
		Err    uint32    `json:"err"`
		Val    uint32    `json:"val"`
		Cycles uint64    `json:"cycles"`
		Span   uint64    `json:"span,omitempty"`
	}{e.Seq, Kind(e.Kind).String(), e.Call, EventName(Event(e)), e.Args, e.Err, e.Val, e.Cycles, e.Span})
}

// EventName resolves the symbolic name of an event's Call field according
// to its kind ("" if unknown).
func EventName(e Event) string {
	switch e.Kind {
	case KindSMC:
		return SMCName(e.Call)
	case KindSVC:
		return SVCName(e.Call)
	case KindLifecycle:
		if e.Call < uint32(NumLifecycle) {
			return Lifecycle(e.Call).String()
		}
	case KindPageMove:
		if e.Call < NumPageMoves {
			return pageMoveNames[e.Call]
		}
	}
	return ""
}
