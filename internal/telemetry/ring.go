package telemetry

import (
	"sync"
	"sync/atomic"
)

// Ring is a bounded in-memory trace of boundary events. When full, the
// oldest events are overwritten (the dropped count is reported, never
// silently lost). Appends never allocate: the buffer is allocated once.
//
// Ring order is linearisable with respect to event sequence numbers: the
// sequence is assigned under the same lock that stores the event, so a
// snapshot is always a contiguous, strictly-increasing suffix of the
// event history.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	total uint64 // events ever appended
}

// NewRing returns a ring holding up to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// appendNext assigns the next sequence number from seq and stores the
// event, both under the ring lock, returning the assigned sequence.
func (r *Ring) appendNext(seq *atomic.Uint64, e Event) uint64 {
	if r == nil {
		return seq.Add(1) - 1
	}
	r.mu.Lock()
	s := seq.Add(1) - 1
	e.Seq = s
	r.buf[r.total%uint64(len(r.buf))] = e
	r.total++
	r.mu.Unlock()
	return s
}

// Append stores an event carrying its own sequence number (tests and
// external producers; instrumented code goes through Recorder).
func (r *Ring) Append(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.total%uint64(len(r.buf))] = e
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the retained events, oldest first.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	cap64 := uint64(len(r.buf))
	if n > cap64 {
		n = cap64
	}
	out := make([]Event, 0, n)
	start := r.total - n
	for i := uint64(0); i < n; i++ {
		out = append(out, r.buf[(start+i)%cap64])
	}
	return out
}

// Total returns how many events were ever appended.
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many events have been overwritten.
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total <= uint64(len(r.buf)) {
		return 0
	}
	return r.total - uint64(len(r.buf))
}

// Capacity returns the ring's fixed capacity.
func (r *Ring) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}
