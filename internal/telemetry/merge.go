package telemetry

// Merge combines snapshots from several independently instrumented
// platforms (e.g. the boards of a serving pool) into one aggregate view.
// Counters, cycle totals and histograms sum; the setup-cycle gauges (which
// report the *latest* measurement on a single platform) take the maximum;
// TLB entry counts sum (total resident entries across boards).
func Merge(snaps ...Snapshot) Snapshot {
	var out Snapshot
	out.Lifecycle = map[string]uint64{}
	out.PageMoves = map[string]uint64{}
	smc := map[uint32]*CallStats{}
	svc := map[uint32]*CallStats{}
	for _, s := range snaps {
		out.Cycles += s.Cycles
		out.Retired += s.Retired
		mergeSeries(smc, s.SMC)
		mergeSeries(svc, s.SVC)
		if s.EnterSetupCycles > out.EnterSetupCycles {
			out.EnterSetupCycles = s.EnterSetupCycles
		}
		if s.ResumeSetupCycles > out.ResumeSetupCycles {
			out.ResumeSetupCycles = s.ResumeSetupCycles
		}
		addCounts(out.Lifecycle, s.Lifecycle)
		addCounts(out.PageMoves, s.PageMoves)
		if s.InsnClasses != nil {
			if out.InsnClasses == nil {
				out.InsnClasses = map[string]uint64{}
			}
			addCounts(out.InsnClasses, s.InsnClasses)
		}
		if s.PageCensus != nil {
			if out.PageCensus == nil {
				out.PageCensus = map[string]int{}
			}
			for k, v := range s.PageCensus {
				out.PageCensus[k] += v
			}
		}
		out.TLB.Hits += s.TLB.Hits
		out.TLB.Misses += s.TLB.Misses
		out.TLB.Fills += s.TLB.Fills
		out.TLB.Flushes += s.TLB.Flushes
		out.TLB.Entries += s.TLB.Entries
		out.Mem.DirtyPages += s.Mem.DirtyPages
		out.Mem.TotalPages += s.Mem.TotalPages
		out.Mem.Snapshots += s.Mem.Snapshots
		out.Mem.DeltaRestores += s.Mem.DeltaRestores
		out.Mem.FullRestores += s.Mem.FullRestores
		out.Mem.WordsCopied += s.Mem.WordsCopied
		out.Mem.PagesCopied += s.Mem.PagesCopied
		out.DecodeCache.Hits += s.DecodeCache.Hits
		out.DecodeCache.Misses += s.DecodeCache.Misses
		out.DecodeCache.Revalidated += s.DecodeCache.Revalidated
		out.DecodeCache.Fills += s.DecodeCache.Fills
		out.DecodeCache.Resets += s.DecodeCache.Resets
		out.DecodeCache.Enabled = out.DecodeCache.Enabled || s.DecodeCache.Enabled
		out.BlockCache.Hits += s.BlockCache.Hits
		out.BlockCache.Misses += s.BlockCache.Misses
		out.BlockCache.Revalidated += s.BlockCache.Revalidated
		out.BlockCache.Invalidated += s.BlockCache.Invalidated
		out.BlockCache.Fills += s.BlockCache.Fills
		out.BlockCache.Resets += s.BlockCache.Resets
		out.BlockCache.Blocks += s.BlockCache.Blocks
		out.BlockCache.BlockInsns += s.BlockCache.BlockInsns
		out.BlockCache.Enabled = out.BlockCache.Enabled || s.BlockCache.Enabled
		out.Trace.Recorded += s.Trace.Recorded
		out.Trace.Dropped += s.Trace.Dropped
		out.Trace.Capacity += s.Trace.Capacity
		out.Replay.Recorded += s.Replay.Recorded
		out.Replay.Replayed += s.Replay.Replayed
		out.Replay.Diverged += s.Replay.Diverged
	}
	out.SMC = flattenSeries(smc)
	out.SVC = flattenSeries(svc)
	return out
}

func mergeSeries(into map[uint32]*CallStats, series []CallStats) {
	for _, cs := range series {
		acc, ok := into[cs.Call]
		if !ok {
			c := cs
			into[cs.Call] = &c
			continue
		}
		acc.Count += cs.Count
		acc.Errors += cs.Errors
		acc.Cycles += cs.Cycles
		acc.DispatchCycles += cs.DispatchCycles
		acc.BodyCycles += cs.BodyCycles
		for b := range acc.Hist {
			acc.Hist[b] += cs.Hist[b]
		}
	}
}

func flattenSeries(m map[uint32]*CallStats) []CallStats {
	if len(m) == 0 {
		return nil
	}
	out := make([]CallStats, 0, len(m))
	for call := uint32(0); call < MaxCall; call++ {
		if cs, ok := m[call]; ok {
			out = append(out, *cs)
		}
	}
	return out
}

func addCounts(into map[string]uint64, from map[string]uint64) {
	for k, v := range from {
		into[k] += v
	}
}
