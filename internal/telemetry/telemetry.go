// Package telemetry is the observability layer of the simulated enclave
// stack: counters, cycle histograms, and boundary-event tracing for every
// crossing between the normal world, the monitor, and enclaves.
//
// The paper evaluates Komodo almost entirely by measurement — Table 3's
// per-SMC cycle counts, Figure 5's enter/exit breakdowns, §8's "where do
// the cycles go" analysis. This package makes the same attribution
// possible in the reproduction: instead of one end-to-end cycle total,
// every SMC and SVC is a named series with call counts, error counts,
// cycle sums, a log2 cycle histogram, and a dispatch-vs-body split
// (world-switch boilerplate vs. handler work, the distinction §8.1's
// crossing analysis turns on).
//
// Design constraints, in order:
//
//  1. The hot path must not allocate. Observing an SMC is a handful of
//     atomic adds, a store into a preallocated ring slot, and a method
//     call on the configured sink. The nop sink must cost nothing
//     measurable next to the cheapest SMC (BenchmarkTelemetryNopOverhead
//     demonstrates this).
//  2. Counters must be exact under concurrency. The §9.2 multi-core
//     sketch (nwos.LockedDriver) serialises SMCs, but observers read
//     snapshots concurrently, and nothing stops two monitors sharing a
//     recorder — so every series is atomic.
//  3. A nil *Recorder is a valid, free recorder. Every method is
//     nil-receiver safe, so instrumented code never branches on
//     "telemetry enabled?".
//
// The boundary-event trace ring follows Guardian (arXiv:2105.05962),
// which validates the *orderliness* of enclave interactions by observing
// the host–enclave interface: each SMC appends one event carrying its
// call number, arguments, result, and cycle cost, and tests assert
// ordering properties against the ring.
package telemetry

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/kapi"
)

// MaxCall bounds the per-call series arrays. SMC and SVC numbers are
// small consecutive integers (1..12 and 1..11); anything >= MaxCall is
// folded into series 0, the "unknown call" slot.
const MaxCall = 16

// NumHistBuckets is the number of log2 cycle-histogram buckets per call
// series. Bucket 0 counts zero-cycle observations; bucket b counts
// observations in [2^(b-1), 2^b); the last bucket is unbounded above.
// 2^23 cycles ≈ 9 ms at the simulated 900 MHz clock — beyond any single
// monitor call.
const NumHistBuckets = 24

// HistBucket returns the histogram bucket index for a cycle count.
func HistBucket(cycles uint64) int {
	b := bits.Len64(cycles) // 0 for 0, 1+floor(log2) otherwise
	if b >= NumHistBuckets {
		b = NumHistBuckets - 1
	}
	return b
}

// Lifecycle enumerates enclave lifecycle transitions, observed at the
// OS-driver boundary (internal/nwos).
type Lifecycle uint8

const (
	LifeInit     Lifecycle = iota // InitAddrspace succeeded
	LifeFinalise                  // Finalise succeeded: measurement fixed
	LifeEnter                     // Enter issued
	LifeResume                    // Resume issued
	LifeSuspend                   // execution returned ErrInterrupted
	LifeExit                      // execution returned ErrSuccess
	LifeFault                     // execution returned ErrFault
	LifeStop                      // Stop succeeded
	LifeRemove                    // Remove succeeded

	NumLifecycle
)

var lifecycleNames = [NumLifecycle]string{
	"init", "finalise", "enter", "resume", "suspend", "exit", "fault", "stop", "remove",
}

func (l Lifecycle) String() string {
	if l < NumLifecycle {
		return lifecycleNames[l]
	}
	return "lifecycle(?)"
}

// Kind classifies a trace event.
type Kind uint8

const (
	// KindSMC is one completed secure monitor call: Call/Args are the
	// request, Err/Val the R0/R1 results, Cycles the full cost from SMC
	// entry to exception return.
	KindSMC Kind = iota
	// KindSVC is one completed supervisor call from an executing enclave.
	KindSVC
	// KindLifecycle is an enclave lifecycle transition; Call holds the
	// Lifecycle code and Val the page it concerns.
	KindLifecycle
	// KindPageMove is a secure↔insecure page movement; Call holds the
	// PageMove code and Val the page or address concerned.
	KindPageMove
)

func (k Kind) String() string {
	switch k {
	case KindSMC:
		return "smc"
	case KindSVC:
		return "svc"
	case KindLifecycle:
		return "lifecycle"
	case KindPageMove:
		return "pagemove"
	}
	return "kind(?)"
}

// PageMove codes (the Call field of KindPageMove events).
const (
	MoveToSecure       uint32 = iota // insecure contents copied into a secure page (MapSecure)
	MoveScrubbed                     // secure page scrubbed and freed (Remove)
	MoveZeroFilled                   // secure page zero-filled (allocation paths)
	MoveInsecureShared               // insecure page mapped into an enclave (MapInsecure)

	NumPageMoves
)

var pageMoveNames = [NumPageMoves]string{
	"to-secure", "scrubbed", "zero-filled", "insecure-shared",
}

// Event is one boundary event. Events are fixed-size values so the hot
// path can record them without allocating.
type Event struct {
	Seq    uint64    `json:"seq"`
	Kind   Kind      `json:"kind"`
	Call   uint32    `json:"call"`
	Args   [4]uint32 `json:"args"`
	Err    uint32    `json:"err"`
	Val    uint32    `json:"val"`
	Cycles uint64    `json:"cycles"`
	// Span is the request-correlation tag active when the event was
	// recorded (see Recorder.SetSpanTag); 0 means "no request context".
	// The serving layer uses it to attribute monitor-boundary events to
	// the distributed trace of the HTTP request that caused them.
	Span uint64 `json:"span,omitempty"`
}

// callSeries is the atomic counter block of one SMC or SVC number.
type callSeries struct {
	count    atomic.Uint64
	errors   atomic.Uint64
	cycles   atomic.Uint64
	dispatch atomic.Uint64 // entry/exit boilerplate share of cycles
	body     atomic.Uint64 // handler share of cycles
	lastDisp atomic.Uint64
	lastBody atomic.Uint64
	hist     [NumHistBuckets]atomic.Uint64
}

func (s *callSeries) observe(total, dispatchCyc uint64, isErr bool) {
	s.count.Add(1)
	if isErr {
		s.errors.Add(1)
	}
	s.cycles.Add(total)
	body := total - dispatchCyc
	s.dispatch.Add(dispatchCyc)
	s.body.Add(body)
	s.lastDisp.Store(dispatchCyc)
	s.lastBody.Store(body)
	s.hist[HistBucket(total)].Add(1)
}

// Recorder is the telemetry hub for one simulated platform. All methods
// are safe for concurrent use and safe on a nil receiver (a nil Recorder
// records nothing).
type Recorder struct {
	sink    Sink
	ring    *Ring
	seq     atomic.Uint64
	spanTag atomic.Uint64

	smc [MaxCall]callSeries
	svc [MaxCall]callSeries

	lifecycle [NumLifecycle]atomic.Uint64
	pageMoves [NumPageMoves]atomic.Uint64

	// Enter/Resume setup cycles (SMC entry to first enclave instruction):
	// the Table 3 "Enter only" / "Resume only" rows as running series.
	enterSetup  atomic.Uint64
	resumeSetup atomic.Uint64
}

// DefaultRingCapacity is the trace-ring size used by New.
const DefaultRingCapacity = 1024

// New returns a Recorder with a nop sink and a DefaultRingCapacity ring.
func New() *Recorder {
	return &Recorder{sink: NopSink{}, ring: NewRing(DefaultRingCapacity)}
}

// SetSink replaces the event sink (nil restores the nop sink). Configure
// sinks before instrumented code runs; the field itself is not locked.
func (r *Recorder) SetSink(s Sink) {
	if r == nil {
		return
	}
	if s == nil {
		s = NopSink{}
	}
	r.sink = s
}

// Ring exposes the boundary-event trace ring.
func (r *Recorder) Ring() *Ring {
	if r == nil {
		return nil
	}
	return r.ring
}

// SetSpanTag sets the request-correlation tag stamped onto every event
// recorded from now on (0 clears it). The serving layer brackets each
// request with SetSpanTag(tag)/SetSpanTag(0) while it has exclusive use
// of the platform, then harvests the tagged events from the ring to build
// the request's monitor-level span timeline.
func (r *Recorder) SetSpanTag(tag uint64) {
	if r == nil {
		return
	}
	r.spanTag.Store(tag)
}

// SpanTag returns the currently active correlation tag.
func (r *Recorder) SpanTag() uint64 {
	if r == nil {
		return 0
	}
	return r.spanTag.Load()
}

// EventsSince returns the ring's retained events with sequence numbers at
// or above mark (use Ring().Total() before a request as the mark). Events
// older than the ring capacity are gone; what remains is still a
// contiguous suffix, so per-request harvesting never sees gaps in the
// middle.
func (r *Recorder) EventsSince(mark uint64) []Event {
	if r == nil {
		return nil
	}
	all := r.ring.Snapshot()
	for i, e := range all {
		if e.Seq >= mark {
			return all[i:]
		}
	}
	return nil
}

// emit assigns a sequence number, appends to the ring, and forwards to the
// sink. The ring append and the sequence assignment happen under the ring
// lock, so ring order always matches sequence order (linearisability of
// the trace is asserted by the concurrency suite).
func (r *Recorder) emit(e Event) {
	e.Span = r.spanTag.Load()
	e.Seq = r.ring.appendNext(&r.seq, e)
	r.sink.Emit(e)
}

// ObserveSMC records one completed SMC: counters, histogram, split, and a
// KindSMC trace event. dispatchCyc is the share of total spent on
// entry/exit boilerplate rather than the handler body.
func (r *Recorder) ObserveSMC(call uint32, args [4]uint32, errc, val uint32, total, dispatchCyc uint64) {
	if r == nil {
		return
	}
	idx := call
	if idx >= MaxCall {
		idx = 0
	}
	r.smc[idx].observe(total, dispatchCyc, errc != uint32(kapi.ErrSuccess))
	r.emit(Event{Kind: KindSMC, Call: call, Args: args, Err: errc, Val: val, Cycles: total})
}

// ObserveSVC records one completed supervisor call from an enclave.
func (r *Recorder) ObserveSVC(call uint32, errc uint32, cyc uint64) {
	if r == nil {
		return
	}
	idx := call
	if idx >= MaxCall {
		idx = 0
	}
	r.svc[idx].observe(cyc, 0, errc != uint32(kapi.ErrSuccess))
	r.emit(Event{Kind: KindSVC, Call: call, Err: errc, Cycles: cyc})
}

// ObserveEnterSetup records the cycles from SMC entry to the first enclave
// instruction of an Enter (resume=false) or Resume (resume=true).
func (r *Recorder) ObserveEnterSetup(resume bool, cyc uint64) {
	if r == nil {
		return
	}
	if resume {
		r.resumeSetup.Store(cyc)
	} else {
		r.enterSetup.Store(cyc)
	}
}

// ObserveLifecycle records an enclave lifecycle transition for page pg.
func (r *Recorder) ObserveLifecycle(l Lifecycle, pg uint32) {
	if r == nil || l >= NumLifecycle {
		return
	}
	r.lifecycle[l].Add(1)
	r.emit(Event{Kind: KindLifecycle, Call: uint32(l), Val: pg})
}

// ObservePageMove records a secure↔insecure page movement.
func (r *Recorder) ObservePageMove(move uint32, pg uint32) {
	if r == nil || move >= NumPageMoves {
		return
	}
	r.pageMoves[move].Add(1)
	r.emit(Event{Kind: KindPageMove, Call: move, Val: pg})
}

// SMCCount returns the number of completed SMCs recorded for call.
func (r *Recorder) SMCCount(call uint32) uint64 {
	if r == nil || call >= MaxCall {
		return 0
	}
	return r.smc[call].count.Load()
}

// SVCCount returns the number of completed SVCs recorded for call.
func (r *Recorder) SVCCount(call uint32) uint64 {
	if r == nil || call >= MaxCall {
		return 0
	}
	return r.svc[call].count.Load()
}

// LastSplit returns the dispatch/body cycle split of the most recent
// occurrence of the given SMC, or zeros if it never ran.
func (r *Recorder) LastSplit(call uint32) (dispatch, body uint64) {
	if r == nil || call >= MaxCall {
		return 0, 0
	}
	return r.smc[call].lastDisp.Load(), r.smc[call].lastBody.Load()
}

// LifecycleCount returns how many times lifecycle transition l was seen.
func (r *Recorder) LifecycleCount(l Lifecycle) uint64 {
	if r == nil || l >= NumLifecycle {
		return 0
	}
	return r.lifecycle[l].Load()
}

// PageMoveCount returns how many page movements of the given code were seen.
func (r *Recorder) PageMoveCount(move uint32) uint64 {
	if r == nil || move >= NumPageMoves {
		return 0
	}
	return r.pageMoves[move].Load()
}
