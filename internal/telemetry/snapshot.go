package telemetry

import (
	"encoding/json"

	"repro/internal/kapi"
)

// SMCName resolves an SMC call number to its KOM_* name.
func SMCName(call uint32) string { return kapi.SMCName(call) }

// SVCName resolves an SVC call number to its KOM_SVC_* name.
func SVCName(call uint32) string { return kapi.SVCName(call) }

// CallStats is the exported view of one call series.
type CallStats struct {
	Call   uint32 `json:"call"`
	Name   string `json:"name"`
	Count  uint64 `json:"count"`
	Errors uint64 `json:"errors"`
	Cycles uint64 `json:"cycles"`
	// DispatchCycles is the share of Cycles spent on SMC entry/exit
	// boilerplate (world switch, register save/restore); BodyCycles is
	// the handler's own work. DispatchCycles+BodyCycles == Cycles.
	DispatchCycles uint64 `json:"dispatch_cycles"`
	BodyCycles     uint64 `json:"body_cycles"`
	// Hist is the log2 cycle histogram (see HistBucket).
	Hist [NumHistBuckets]uint64 `json:"hist"`
}

// Mean returns the average cycles per call (0 if the call never ran).
func (c CallStats) Mean() uint64 {
	if c.Count == 0 {
		return 0
	}
	return c.Cycles / c.Count
}

// TLBStats is the MMU's translation-cache view, filled in by the platform
// (the TLB belongs to the machine, not the recorder).
type TLBStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Fills   uint64 `json:"fills"`
	Flushes uint64 `json:"flushes"`
	Entries int    `json:"entries"`
}

// MemStats is the physical-memory view of the dirty-page delta-restore
// machinery (internal/mem), filled in by the platform.
type MemStats struct {
	// DirtyPages is a gauge: pages written since the last snapshot or
	// restore (what the next delta restore would copy back).
	DirtyPages int `json:"dirty_pages"`
	// TotalPages sizes the gauge: what a full restore copies.
	TotalPages    int    `json:"total_pages"`
	Snapshots     uint64 `json:"snapshots"`
	DeltaRestores uint64 `json:"delta_restores"`
	FullRestores  uint64 `json:"full_restores"`
	WordsCopied   uint64 `json:"words_copied"`
	PagesCopied   uint64 `json:"pages_copied"`
}

// DecodeCacheStats is the interpreter's predecoded-instruction cache
// view (internal/arm), filled in by the platform.
type DecodeCacheStats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Revalidated uint64 `json:"revalidated"`
	Fills       uint64 `json:"fills"`
	Resets      uint64 `json:"resets"`
	Enabled     bool   `json:"enabled"`
}

// BlockCacheStats is the interpreter's superblock translation cache view
// (internal/arm), filled in by the platform. Blocks/BlockInsns give the
// mean dispatched block length.
type BlockCacheStats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Revalidated uint64 `json:"revalidated"`
	Invalidated uint64 `json:"invalidated"`
	Fills       uint64 `json:"fills"`
	Resets      uint64 `json:"resets"`
	Blocks      uint64 `json:"blocks"`
	BlockInsns  uint64 `json:"block_insns"`
	Enabled     bool   `json:"enabled"`
}

// MeanBlockLen is the average number of instructions retired per block
// execution (0 if no block ever ran).
func (s BlockCacheStats) MeanBlockLen() float64 {
	if s.Blocks == 0 {
		return 0
	}
	return float64(s.BlockInsns) / float64(s.Blocks)
}

// TraceStats summarises the boundary-event ring.
type TraceStats struct {
	Recorded uint64 `json:"recorded"`
	Dropped  uint64 `json:"dropped"`
	Capacity int    `json:"capacity"`
}

// ReplayStats counts deterministic record/replay activity (internal/replay),
// filled in by the serving layer from the replay package's global counters.
type ReplayStats struct {
	Recorded uint64 `json:"recorded"`
	Replayed uint64 `json:"replayed"`
	Diverged uint64 `json:"diverged"`
}

// Snapshot is a point-in-time JSON view of everything the stack has
// observed. The recorder fills its own series (SMC, SVC, lifecycle, page
// flow, trace); the platform layers in machine-owned gauges (cycles,
// retired instructions, instruction classes, TLB, page census).
type Snapshot struct {
	Cycles  uint64 `json:"cycles"`
	Retired uint64 `json:"retired"`

	SMC []CallStats `json:"smc"`
	SVC []CallStats `json:"svc"`

	// EnterSetupCycles / ResumeSetupCycles are the latest Table 3 "Enter
	// only" / "Resume only" measurements: SMC entry to first enclave
	// instruction.
	EnterSetupCycles  uint64 `json:"enter_setup_cycles"`
	ResumeSetupCycles uint64 `json:"resume_setup_cycles"`

	Lifecycle map[string]uint64 `json:"lifecycle"`
	PageMoves map[string]uint64 `json:"page_moves"`

	// InsnClasses counts retired instructions by class (filled by the
	// platform from the machine's interpreter).
	InsnClasses map[string]uint64 `json:"insn_classes"`
	TLB         TLBStats          `json:"tlb"`
	Mem         MemStats          `json:"mem"`
	DecodeCache DecodeCacheStats  `json:"decode_cache"`
	BlockCache  BlockCacheStats   `json:"block_cache"`
	// PageCensus counts secure pages by current PageDB type (filled by
	// the platform from the decoded PageDB).
	PageCensus map[string]int `json:"page_census"`

	Trace  TraceStats  `json:"trace"`
	Replay ReplayStats `json:"replay"`
}

// exportSeries copies the non-empty series out of a callSeries array.
func exportSeries(series *[MaxCall]callSeries, name func(uint32) string) []CallStats {
	var out []CallStats
	for call := uint32(0); call < MaxCall; call++ {
		s := &series[call]
		n := s.count.Load()
		if n == 0 {
			continue
		}
		cs := CallStats{
			Call:           call,
			Name:           name(call),
			Count:          n,
			Errors:         s.errors.Load(),
			Cycles:         s.cycles.Load(),
			DispatchCycles: s.dispatch.Load(),
			BodyCycles:     s.body.Load(),
		}
		if cs.Name == "" {
			cs.Name = "unknown"
		}
		for b := range cs.Hist {
			cs.Hist[b] = s.hist[b].Load()
		}
		out = append(out, cs)
	}
	return out
}

// Snapshot exports the recorder-owned series. Counters are read
// atomically but not as one transaction: a snapshot taken while calls are
// in flight is a consistent-enough view for reporting, and exact when the
// platform is quiescent.
func (r *Recorder) Snapshot() Snapshot {
	var s Snapshot
	s.Lifecycle = map[string]uint64{}
	s.PageMoves = map[string]uint64{}
	if r == nil {
		return s
	}
	s.SMC = exportSeries(&r.smc, SMCName)
	s.SVC = exportSeries(&r.svc, SVCName)
	s.EnterSetupCycles = r.enterSetup.Load()
	s.ResumeSetupCycles = r.resumeSetup.Load()
	for l := Lifecycle(0); l < NumLifecycle; l++ {
		if n := r.lifecycle[l].Load(); n > 0 {
			s.Lifecycle[l.String()] = n
		}
	}
	for mv := uint32(0); mv < NumPageMoves; mv++ {
		if n := r.pageMoves[mv].Load(); n > 0 {
			s.PageMoves[pageMoveNames[mv]] = n
		}
	}
	s.Trace = TraceStats{
		Recorded: r.ring.Total(),
		Dropped:  r.ring.Dropped(),
		Capacity: r.ring.Capacity(),
	}
	return s
}

// MarshalIndent renders the snapshot as indented JSON (the -stats view).
func (s Snapshot) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
