package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/kapi"
)

func TestHistBucket(t *testing.T) {
	cases := []struct {
		cyc  uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 22, 23}, {1 << 40, NumHistBuckets - 1}, {^uint64(0), NumHistBuckets - 1},
	}
	for _, c := range cases {
		if got := HistBucket(c.cyc); got != c.want {
			t.Errorf("HistBucket(%d) = %d, want %d", c.cyc, got, c.want)
		}
	}
}

func TestObserveSMCSeries(t *testing.T) {
	r := New()
	r.ObserveSMC(kapi.SMCEnter, [4]uint32{3, 0, 0, 0}, uint32(kapi.ErrSuccess), 42, 700, 160)
	r.ObserveSMC(kapi.SMCEnter, [4]uint32{3, 0, 0, 0}, uint32(kapi.ErrFault), 4, 300, 160)
	r.ObserveSMC(kapi.SMCGetPhysPages, [4]uint32{}, uint32(kapi.ErrSuccess), 254, 123, 100)

	if got := r.SMCCount(kapi.SMCEnter); got != 2 {
		t.Fatalf("SMCCount(Enter) = %d", got)
	}
	s := r.Snapshot()
	var enter, getpp *CallStats
	for i := range s.SMC {
		switch s.SMC[i].Call {
		case kapi.SMCEnter:
			enter = &s.SMC[i]
		case kapi.SMCGetPhysPages:
			getpp = &s.SMC[i]
		}
	}
	if enter == nil || getpp == nil {
		t.Fatalf("snapshot missing series: %+v", s.SMC)
	}
	if enter.Name != "KOM_SMC_ENTER" || enter.Count != 2 || enter.Errors != 1 {
		t.Errorf("enter series: %+v", enter)
	}
	if enter.Cycles != 1000 || enter.DispatchCycles != 320 || enter.BodyCycles != 680 {
		t.Errorf("enter cycles: %+v", enter)
	}
	if enter.DispatchCycles+enter.BodyCycles != enter.Cycles {
		t.Errorf("split does not sum: %+v", enter)
	}
	if enter.Hist[HistBucket(700)] == 0 || enter.Hist[HistBucket(300)] == 0 {
		t.Errorf("histogram not filled: %v", enter.Hist)
	}
	if getpp.Mean() != 123 {
		t.Errorf("getpp mean = %d", getpp.Mean())
	}
	if d, b := r.LastSplit(kapi.SMCEnter); d != 160 || b != 140 {
		t.Errorf("LastSplit = (%d, %d)", d, b)
	}
}

func TestUnknownCallFoldsToSlotZero(t *testing.T) {
	r := New()
	r.ObserveSMC(999, [4]uint32{}, uint32(kapi.ErrInvalidArg), 0, 50, 50)
	if got := r.SMCCount(0); got != 1 {
		t.Fatalf("unknown call not folded: slot0 = %d", got)
	}
	s := r.Snapshot()
	if len(s.SMC) != 1 || s.SMC[0].Name != "unknown" {
		t.Fatalf("snapshot: %+v", s.SMC)
	}
	// The trace still records the original call number.
	evs := r.Ring().Snapshot()
	if len(evs) != 1 || evs[0].Call != 999 {
		t.Fatalf("ring: %+v", evs)
	}
}

func TestNilRecorderIsFree(t *testing.T) {
	var r *Recorder
	r.ObserveSMC(1, [4]uint32{}, 0, 0, 1, 1)
	r.ObserveSVC(1, 0, 1)
	r.ObserveLifecycle(LifeEnter, 0)
	r.ObservePageMove(MoveToSecure, 0)
	r.ObserveEnterSetup(false, 1)
	r.SetSink(&MemorySink{})
	if r.SMCCount(1) != 0 || r.Ring() != nil {
		t.Fatal("nil recorder recorded something")
	}
	s := r.Snapshot()
	if len(s.SMC) != 0 {
		t.Fatalf("nil snapshot: %+v", s)
	}
}

func TestRingWraparound(t *testing.T) {
	r := &Recorder{sink: NopSink{}, ring: NewRing(4)}
	for i := uint32(0); i < 10; i++ {
		r.ObserveSVC(kapi.SVCGetRandom, 0, uint64(i))
	}
	ring := r.Ring()
	if ring.Total() != 10 || ring.Dropped() != 6 || ring.Capacity() != 4 {
		t.Fatalf("total=%d dropped=%d cap=%d", ring.Total(), ring.Dropped(), ring.Capacity())
	}
	evs := ring.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("snapshot len %d", len(evs))
	}
	// Oldest-first, contiguous suffix of the sequence.
	for i, e := range evs {
		if e.Seq != uint64(6+i) {
			t.Fatalf("event %d has seq %d: %+v", i, e.Seq, evs)
		}
	}
}

func TestRingLinearisableUnderConcurrency(t *testing.T) {
	r := New()
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.ObserveSMC(kapi.SMCGetPhysPages, [4]uint32{}, 0, 254, 123, 100)
			}
		}()
	}
	wg.Wait()
	if got := r.SMCCount(kapi.SMCGetPhysPages); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	evs := r.Ring().Snapshot()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("ring not contiguous at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
	if r.Ring().Total() != workers*perWorker {
		t.Fatalf("ring total = %d", r.Ring().Total())
	}
}

func TestMemorySink(t *testing.T) {
	r := New()
	sink := &MemorySink{}
	r.SetSink(sink)
	r.ObserveLifecycle(LifeInit, 7)
	r.ObserveLifecycle(LifeFinalise, 7)
	if sink.Len() != 2 {
		t.Fatalf("sink len %d", sink.Len())
	}
	evs := sink.Events()
	if evs[0].Kind != KindLifecycle || Lifecycle(evs[0].Call) != LifeInit || evs[0].Val != 7 {
		t.Fatalf("event 0: %+v", evs[0])
	}
	if r.LifecycleCount(LifeInit) != 1 {
		t.Fatal("lifecycle counter")
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	r := New()
	r.SetSink(sink)
	r.ObserveSMC(kapi.SMCEnter, [4]uint32{3, 1, 2, 0}, uint32(kapi.ErrSuccess), 9, 738, 160)
	r.ObservePageMove(MoveScrubbed, 5)
	if sink.Err() != nil {
		t.Fatal(sink.Err())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines: %q", lines)
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["kind"] != "smc" || first["name"] != "KOM_SMC_ENTER" {
		t.Fatalf("first line: %v", first)
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if second["kind"] != "pagemove" || second["name"] != "scrubbed" {
		t.Fatalf("second line: %v", second)
	}
}

// failAfter fails every write after the first n bytes worth of calls.
type failAfter struct {
	writes int
	n      int
}

func (w *failAfter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.n {
		return 0, errShortDisk
	}
	return len(p), nil
}

var errShortDisk = &shortDiskError{}

type shortDiskError struct{}

func (*shortDiskError) Error() string { return "disk full" }

// TestJSONLSinkCountsDropped pins that a JSONL sink that hits a write
// error reports every event it subsequently discards — including the one
// whose write failed — instead of silently truncating the stream.
func TestJSONLSinkCountsDropped(t *testing.T) {
	sink := NewJSONLSink(&failAfter{n: 2})
	r := New()
	r.SetSink(sink)
	r.ObserveLifecycle(LifeInit, 1)
	r.ObserveLifecycle(LifeFinalise, 1)
	if sink.Err() != nil || sink.Dropped() != 0 {
		t.Fatalf("healthy sink: err=%v dropped=%d", sink.Err(), sink.Dropped())
	}
	r.ObserveLifecycle(LifeEnter, 1) // write fails here
	if sink.Err() == nil {
		t.Fatal("write error not retained")
	}
	if sink.Dropped() != 1 {
		t.Fatalf("failing event not counted dropped: %d", sink.Dropped())
	}
	for i := 0; i < 5; i++ {
		r.ObserveLifecycle(LifeExit, 1)
	}
	if sink.Dropped() != 6 {
		t.Fatalf("post-error events not counted: dropped=%d, want 6", sink.Dropped())
	}
	if sink.Err().Error() != "disk full" {
		t.Fatalf("first error not sticky: %v", sink.Err())
	}
}

func TestSpanTagStampsEvents(t *testing.T) {
	r := New()
	r.ObserveSVC(kapi.SVCGetRandom, 0, 10) // before any tag
	mark := r.Ring().Total()
	r.SetSpanTag(0xfeedface)
	r.ObserveSMC(kapi.SMCEnter, [4]uint32{1}, 0, 0, 700, 160)
	r.ObserveSVC(kapi.SVCGetRandom, 0, 80)
	r.SetSpanTag(0)
	r.ObserveSVC(kapi.SVCGetRandom, 0, 20) // after the tag cleared

	evs := r.Ring().Snapshot()
	if len(evs) != 4 {
		t.Fatalf("events: %+v", evs)
	}
	if evs[0].Span != 0 || evs[3].Span != 0 {
		t.Fatalf("untagged events carry a span: %+v", evs)
	}
	if evs[1].Span != 0xfeedface || evs[2].Span != 0xfeedface {
		t.Fatalf("tagged events lost the span: %+v", evs)
	}

	since := r.EventsSince(mark)
	if len(since) != 3 || since[0].Seq != mark {
		t.Fatalf("EventsSince(%d): %+v", mark, since)
	}
	var tagged int
	for _, e := range since {
		if e.Span == 0xfeedface {
			tagged++
		}
	}
	if tagged != 2 {
		t.Fatalf("tagged harvest: %d, want 2", tagged)
	}

	var nilR *Recorder
	nilR.SetSpanTag(1) // must not panic
	if nilR.SpanTag() != 0 || nilR.EventsSince(0) != nil {
		t.Fatal("nil recorder not inert")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.ObserveSMC(kapi.SMCEnter, [4]uint32{}, 0, 0, 738, 160)
	r.ObserveLifecycle(LifeEnter, 3)
	s := r.Snapshot()
	s.TLB = TLBStats{Hits: 10, Misses: 2, Fills: 2, Flushes: 1}
	s.InsnClasses = map[string]uint64{"alu": 100}
	data, err := s.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.TLB.Hits != 10 || back.Lifecycle["enter"] != 1 || len(back.SMC) != 1 {
		t.Fatalf("round trip: %+v", back)
	}
}

// TestHotPathDoesNotAllocate pins the zero-allocation contract of the
// observation hot path with the nop sink.
func TestHotPathDoesNotAllocate(t *testing.T) {
	r := New()
	args := [4]uint32{1, 2, 3, 4}
	allocs := testing.AllocsPerRun(1000, func() {
		r.ObserveSMC(kapi.SMCEnter, args, 0, 0, 738, 160)
		r.ObserveSVC(kapi.SVCGetRandom, 0, 80)
		r.ObservePageMove(MoveToSecure, 1)
		r.ObserveLifecycle(LifeEnter, 1)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates %v times per observation batch", allocs)
	}
}

// BenchmarkObserveSMC measures the raw cost of one SMC observation with
// the nop sink (the full-stack comparison lives in the repo root's
// BenchmarkTelemetryNopOverhead).
func BenchmarkObserveSMC(b *testing.B) {
	r := New()
	args := [4]uint32{1, 2, 3, 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.ObserveSMC(kapi.SMCEnter, args, 0, 0, 738, 160)
	}
}
