package komodo_test

import (
	"testing"

	"repro/internal/kasm"
	"repro/komodo"
)

// TestCheckpointRoundTrip: checkpoint → marshal → unmarshal → restore on
// a second identically-keyed system, then run the migrated enclave.
func TestCheckpointRoundTrip(t *testing.T) {
	sys, err := komodo.New(komodo.WithSeed(77), komodo.WithRefinementChecking())
	if err != nil {
		t.Fatal(err)
	}
	img, err := kasm.AddArgs().Image()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := sys.LoadEnclave(komodo.FromNWOSImage(img))
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := sys.CheckpointEnclave(enc)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ckpt.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := komodo.UnmarshalCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Blob) != len(ckpt.Blob) || back.Manifest.NumPages != ckpt.Manifest.NumPages {
		t.Fatalf("round-trip mangled checkpoint: %d/%d words, %d/%d pages",
			len(back.Blob), len(ckpt.Blob), back.Manifest.NumPages, ckpt.Manifest.NumPages)
	}

	peer, err := komodo.New(komodo.WithSeed(77), komodo.WithRefinementChecking())
	if err != nil {
		t.Fatal(err)
	}
	clone, err := peer.RestoreEnclave(back)
	if err != nil {
		t.Fatal(err)
	}
	res, err := clone.Run(20, 22)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 42 {
		t.Fatalf("migrated enclave returned %d", res.Value)
	}

	// A system with a different boot secret must reject the blob.
	alien, err := komodo.New(komodo.WithSeed(78))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alien.RestoreEnclave(back); err == nil {
		t.Fatal("restore on a differently-keyed system succeeded")
	}
}

// BenchmarkCheckpoint measures sealing the §8.2 notary enclave (7 secure
// pages) into a portable checkpoint: wall time per op plus the monitor's
// charged cycle cost and the blob size as custom metrics.
func BenchmarkCheckpoint(b *testing.B) {
	sys, err := komodo.New(komodo.WithSeed(7))
	if err != nil {
		b.Fatal(err)
	}
	img, err := kasm.NotaryGuest(1).Image()
	if err != nil {
		b.Fatal(err)
	}
	enc, err := sys.LoadEnclave(komodo.FromNWOSImage(img))
	if err != nil {
		b.Fatal(err)
	}
	var blobWords int
	start := sys.Cycles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ckpt, err := sys.CheckpointEnclave(enc)
		if err != nil {
			b.Fatal(err)
		}
		blobWords = len(ckpt.Blob)
	}
	b.StopTimer()
	b.ReportMetric(float64(sys.Cycles()-start)/float64(b.N), "cycles/op")
	b.ReportMetric(float64(blobWords*4), "blob-bytes")
}

// BenchmarkRestore measures instantiating that checkpoint back onto the
// same board (restore + destroy per op, so pages do not accumulate).
func BenchmarkRestore(b *testing.B) {
	sys, err := komodo.New(komodo.WithSeed(7))
	if err != nil {
		b.Fatal(err)
	}
	img, err := kasm.NotaryGuest(1).Image()
	if err != nil {
		b.Fatal(err)
	}
	enc, err := sys.LoadEnclave(komodo.FromNWOSImage(img))
	if err != nil {
		b.Fatal(err)
	}
	ckpt, err := sys.CheckpointEnclave(enc)
	if err != nil {
		b.Fatal(err)
	}
	var cyc uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c0 := sys.Cycles()
		clone, err := sys.RestoreEnclave(ckpt)
		if err != nil {
			b.Fatal(err)
		}
		cyc += sys.Cycles() - c0 // restore only; destroy is excluded below
		b.StopTimer()
		if err := clone.Destroy(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(cyc)/float64(b.N), "cycles/op")
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"not json",
		`{"version":2,"manifest":{},"blob":""}`,
		`{"version":1,"manifest":{},"blob":"!!!"}`,
	} {
		if _, err := komodo.UnmarshalCheckpoint([]byte(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}
