package komodo

// Sealed enclave checkpoints at the facade level: a Checkpoint bundles
// the monitor-sealed blob (opaque, integrity- and confidentiality-
// protected) with the untrusted OS manifest needed to re-address the
// enclave after restore. Checkpoints serialise to JSON for transport
// and at-rest storage (internal/store); see docs/SEALING.md.

import (
	"encoding/base64"
	"encoding/json"
	"fmt"

	"repro/internal/nwos"
	"repro/internal/sha2"
)

// Checkpoint is a sealed, durable image of one enclave.
type Checkpoint struct {
	// Manifest is the OS bookkeeping: page roles by logical index. It is
	// untrusted — a corrupted manifest makes restore fail, never unseal
	// someone else's state.
	Manifest nwos.Manifest
	// Blob is the sealed image. Only a monitor holding the same boot
	// secret can open it, and only under the same enclave measurement.
	Blob []uint32
}

// checkpointWire is the JSON encoding: the manifest inline, the blob as
// base64 of its big-endian word bytes.
type checkpointWire struct {
	Version  int           `json:"version"`
	Manifest nwos.Manifest `json:"manifest"`
	Blob     string        `json:"blob"`
}

// MarshalBinary encodes the checkpoint for storage or transport.
func (c *Checkpoint) MarshalBinary() ([]byte, error) {
	w := checkpointWire{
		Version:  1,
		Manifest: c.Manifest,
		Blob:     base64.StdEncoding.EncodeToString(sha2.WordsToBytes(c.Blob)),
	}
	return json.Marshal(w)
}

// UnmarshalCheckpoint decodes MarshalBinary output.
func UnmarshalCheckpoint(data []byte) (*Checkpoint, error) {
	var w checkpointWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("komodo: checkpoint decode: %w", err)
	}
	if w.Version != 1 {
		return nil, fmt.Errorf("komodo: unsupported checkpoint version %d", w.Version)
	}
	raw, err := base64.StdEncoding.DecodeString(w.Blob)
	if err != nil {
		return nil, fmt.Errorf("komodo: checkpoint blob decode: %w", err)
	}
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("komodo: checkpoint blob length %d not word-aligned", len(raw))
	}
	return &Checkpoint{Manifest: w.Manifest, Blob: sha2.BytesToWords(raw)}, nil
}

// CheckpointEnclave seals a finalised (or stopped) enclave into a
// portable checkpoint. The enclave keeps running; the checkpoint is a
// point-in-time copy.
func (s *System) CheckpointEnclave(e *Enclave) (*Checkpoint, error) {
	blob, man, err := s.os.CheckpointEnclave(e.enc)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{Manifest: man, Blob: blob}, nil
}

// RestoreEnclave instantiates a checkpoint onto this system. It succeeds
// exactly when this board's monitor derives the same measurement-bound
// sealing key — same boot secret, same enclave measurement — so a blob
// can migrate between identically-keyed boards but never to a foreign
// one, and never after tampering.
func (s *System) RestoreEnclave(c *Checkpoint) (*Enclave, error) {
	enc, err := s.os.RestoreEnclave(c.Blob, c.Manifest)
	if err != nil {
		return nil, err
	}
	return &Enclave{sys: s, enc: enc}, nil
}
