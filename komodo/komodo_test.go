package komodo_test

import (
	"errors"
	"testing"

	"repro/internal/kasm"
	"repro/komodo"
)

// loadGuest converts a kasm guest into a facade image and loads it.
func loadGuest(t *testing.T, sys *komodo.System, g kasm.Guest) *komodo.Enclave {
	t.Helper()
	nimg, err := g.Image()
	if err != nil {
		t.Fatal(err)
	}
	img := komodo.Image{Entry: nimg.Entry, Spares: nimg.Spares}
	for _, s := range nimg.Segments {
		img.Segments = append(img.Segments, komodo.Segment{VA: s.VA, Write: s.Write, Exec: s.Exec, Words: s.Words})
	}
	for _, sh := range nimg.Shared {
		img.Shared = append(img.Shared, komodo.SharedRegion{VA: sh.VA, Write: sh.Write, Pages: sh.Pages})
	}
	enc, err := sys.LoadEnclave(img)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestQuickstartFlow(t *testing.T) {
	sys, err := komodo.New(komodo.WithRefinementChecking())
	if err != nil {
		t.Fatal(err)
	}
	n, err := sys.PhysPages()
	if err != nil || n != 254 {
		t.Fatalf("PhysPages = %d, %v", n, err)
	}
	enc := loadGuest(t, sys, kasm.AddArgs())
	res, err := enc.Run(40, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 42 || res.Faulted || res.Interrupted {
		t.Fatalf("Run = %+v", res)
	}
	if err := enc.Destroy(); err != nil {
		t.Fatal(err)
	}
}

func TestRunResumesAcrossInterrupts(t *testing.T) {
	sys, err := komodo.New()
	if err != nil {
		t.Fatal(err)
	}
	enc := loadGuest(t, sys, kasm.CountTo())
	sys.ScheduleInterrupt(5000)
	res, err := enc.Enter(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatalf("expected interruption, got %+v", res)
	}
	res, err = enc.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 100_000 {
		t.Fatalf("resume result %+v", res)
	}
	// Run hides the suspension entirely.
	sys.ScheduleInterrupt(5000)
	res, err = enc.Run(50_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted || res.Value != 50_000 {
		t.Fatalf("Run = %+v", res)
	}
}

func TestFaultSurfaced(t *testing.T) {
	sys, _ := komodo.New()
	enc := loadGuest(t, sys, kasm.Faulter(kasm.FaultWriteRO))
	res, err := enc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Faulted {
		t.Fatalf("fault not surfaced: %+v", res)
	}
}

func TestMeasurementStableAndDistinct(t *testing.T) {
	sysA, _ := komodo.New(komodo.WithSeed(3))
	sysB, _ := komodo.New(komodo.WithSeed(4))
	a := loadGuest(t, sysA, kasm.AddArgs())
	b := loadGuest(t, sysB, kasm.AddArgs())
	ma, err := a.Measurement()
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.Measurement()
	if err != nil {
		t.Fatal(err)
	}
	if ma != mb {
		t.Fatal("same image produced different measurements on different platforms")
	}
	c := loadGuest(t, sysA, kasm.ExitConst(1))
	mc, _ := c.Measurement()
	if mc == ma {
		t.Fatal("different images produced identical measurements")
	}
}

func TestSharedRegionIO(t *testing.T) {
	sys, _ := komodo.New()
	enc := loadGuest(t, sys, kasm.SharedEcho())
	if err := enc.WriteShared(0, 0, []uint32{500}); err != nil {
		t.Fatal(err)
	}
	res, err := enc.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 501 {
		t.Fatalf("echo = %d", res.Value)
	}
	out, err := enc.ReadShared(0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 501 {
		t.Fatalf("shared out = %d", out[0])
	}
	if _, err := enc.ReadShared(3, 0, 1); err == nil {
		t.Fatal("read of missing shared region succeeded")
	}
}

func TestStaticProfileOption(t *testing.T) {
	sys, err := komodo.New(komodo.WithStaticProfile())
	if err != nil {
		t.Fatal(err)
	}
	nimg, _ := kasm.ExitConst(1).Image()
	img := komodo.Image{Entry: nimg.Entry, Spares: 1}
	for _, s := range nimg.Segments {
		img.Segments = append(img.Segments, komodo.Segment{VA: s.VA, Write: s.Write, Exec: s.Exec, Words: s.Words})
	}
	// Requesting spares under the static profile must fail (AllocSpare is
	// absent from the SGXv1-style API).
	if _, err := sys.LoadEnclave(img); err == nil {
		t.Fatal("spare allocation accepted under static profile")
	}
}

func TestMonitorErrorsWrapped(t *testing.T) {
	sys, _ := komodo.New()
	enc := loadGuest(t, sys, kasm.ExitConst(5))
	// Resume without suspension is a monitor error surfaced as ErrEnclave.
	_, err := enc.Resume()
	if !errors.Is(err, komodo.ErrEnclave) {
		t.Fatalf("Resume error = %v", err)
	}
}

func TestDeterministicSimulation(t *testing.T) {
	run := func() uint32 {
		sys, _ := komodo.New(komodo.WithSeed(77))
		enc := loadGuest(t, sys, kasm.GetRandom())
		res, err := enc.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Value
	}
	if run() != run() {
		t.Fatal("same-seed simulations diverged")
	}
}

func TestCyclesAdvance(t *testing.T) {
	sys, _ := komodo.New()
	before := sys.Cycles()
	enc := loadGuest(t, sys, kasm.ExitConst(1))
	if _, err := enc.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.Cycles() <= before {
		t.Fatal("cycle counter did not advance")
	}
}
