package komodo_test

import (
	"testing"

	"repro/internal/kasm"
	"repro/komodo"
)

// The downstream-user acceptance test: every feature a consumer of the
// library touches, exercised through the public API only (plus the kasm
// guest library for enclave code).

func load(t *testing.T, sys *komodo.System, g kasm.Guest) *komodo.Enclave {
	t.Helper()
	nimg, err := g.Image()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := sys.LoadEnclave(komodo.FromNWOSImage(nimg))
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestAcceptanceFullTour(t *testing.T) {
	sys, err := komodo.New(
		komodo.WithSeed(2718),
		komodo.WithRefinementChecking(),
		komodo.WithProtection(komodo.ProtEncrypt),
		komodo.WithExecBudget(10_000_000),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Several enclaves coexist.
	adder := load(t, sys, kasm.AddArgs())
	vault := load(t, sys, kasm.Vault())
	pager := load(t, sys, kasm.SelfPager())

	// Plain computation.
	if res, err := adder.Run(2, 3); err != nil || res.Value != 5 {
		t.Fatalf("adder: %v %+v", err, res)
	}
	// Measurements are per-identity.
	ma, _ := adder.Measurement()
	mv, _ := vault.Measurement()
	if ma == mv {
		t.Fatal("distinct enclaves share a measurement")
	}
	// Shared-memory protocol (vault provision + unlock).
	pw := []uint32{1, 2, 3, 4}
	vault.WriteShared(0, 0, pw)
	if res, err := vault.Run(0); err != nil || res.Value != 1 {
		t.Fatalf("provision: %v %+v", err, res)
	}
	vault.WriteShared(0, 0, pw)
	if res, err := vault.Run(1); err != nil || res.Value != 1 {
		t.Fatalf("unlock: %v %+v", err, res)
	}
	// Dispatcher extension through the facade.
	if res, err := pager.Run(pager.SparePages()[0]); err != nil || res.Value != 0xabcd {
		t.Fatalf("self-pager: %v %+v", err, res)
	}
	// Interrupt visibility.
	counter := load(t, sys, kasm.CountTo())
	sys.ScheduleInterrupt(2000)
	res, err := counter.Enter(60_000)
	if err != nil || !res.Interrupted {
		t.Fatalf("interrupt: %v %+v", err, res)
	}
	if res, err = counter.Resume(); err != nil || res.Value != 60_000 {
		t.Fatalf("resume: %v %+v", err, res)
	}
	// Teardown and reuse.
	for _, e := range []*komodo.Enclave{adder, vault, pager, counter} {
		if err := e.Destroy(); err != nil {
			t.Fatal(err)
		}
	}
	again := load(t, sys, kasm.ExitConst(11))
	if res, err := again.Run(); err != nil || res.Value != 11 {
		t.Fatalf("post-teardown reuse: %v %+v", err, res)
	}
}

func TestAcceptanceSnapshotForking(t *testing.T) {
	sys, err := komodo.New(komodo.WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	enc := load(t, sys, kasm.GetRandom())
	snap := sys.Snapshot()
	res1, err := enc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Restore(snap); err != nil {
		t.Fatal(err)
	}
	res2, err := enc.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Same fork point, same entropy stream: identical random words.
	if res1.Value != res2.Value {
		t.Fatalf("forked runs diverged: %#x vs %#x", res1.Value, res2.Value)
	}
	// Without the restore, the stream advances.
	res3, err := enc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res3.Value == res2.Value {
		t.Fatal("entropy stream did not advance")
	}
}

func TestAcceptanceCycleAccounting(t *testing.T) {
	sys, _ := komodo.New()
	enc := load(t, sys, kasm.ExitConst(1))
	c0 := sys.Cycles()
	enc.Run()
	c1 := sys.Cycles()
	enc.Run()
	c2 := sys.Cycles()
	if c1 <= c0 || c2 <= c1 {
		t.Fatal("cycle counter not monotone across runs")
	}
	// Two identical crossings cost the same.
	if c2-c1 != c1-c0 {
		// First crossing may differ only by TLB effects under the default
		// (always-flush) monitor; it must not.
		t.Fatalf("crossing costs differ: %d vs %d", c1-c0, c2-c1)
	}
}

func TestAcceptancePhysPagesMatchesMonitor(t *testing.T) {
	sys, _ := komodo.New()
	n, err := sys.PhysPages()
	if err != nil {
		t.Fatal(err)
	}
	if n != sys.Monitor().NPages() {
		t.Fatalf("PhysPages %d != monitor %d", n, sys.Monitor().NPages())
	}
	if sys.OS() == nil || sys.Machine() == nil {
		t.Fatal("accessors broken")
	}
}

func TestAcceptanceMultiThread(t *testing.T) {
	sys, _ := komodo.New()
	nimg, err := kasm.CountTo().Image()
	if err != nil {
		t.Fatal(err)
	}
	img := komodo.FromNWOSImage(nimg)
	img.ExtraThreads = []uint32{0}
	enc, err := sys.LoadEnclave(img)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Threads() != 2 {
		t.Fatalf("threads = %d", enc.Threads())
	}
	sys.ScheduleInterrupt(500)
	res, err := enc.EnterThread(0, 100_000)
	if err != nil || !res.Interrupted {
		t.Fatalf("suspend: %v %+v", err, res)
	}
	if res, err := enc.EnterThread(1, 50); err != nil || res.Value != 50 {
		t.Fatalf("thread 1: %v %+v", err, res)
	}
	if res, err := enc.ResumeThread(0); err != nil || res.Value != 100_000 {
		t.Fatalf("resume 0: %v %+v", err, res)
	}
	if _, err := enc.EnterThread(5); err == nil {
		t.Fatal("out-of-range thread accepted")
	}
}

func TestAcceptanceSecureMemoryOption(t *testing.T) {
	// A 512 kB secure region: 128 pages minus 2 reserved.
	sys, err := komodo.New(komodo.WithSecureMemory(512 << 10))
	if err != nil {
		t.Fatal(err)
	}
	n, err := sys.PhysPages()
	if err != nil {
		t.Fatal(err)
	}
	if n != 126 {
		t.Fatalf("PhysPages = %d, want 126", n)
	}
	enc := load(t, sys, kasm.ExitConst(9))
	if res, err := enc.Run(); err != nil || res.Value != 9 {
		t.Fatalf("enclave on small region: %v %+v", err, res)
	}
	// An unusable region fails loudly at boot.
	if _, err := komodo.New(komodo.WithSecureMemory(2 << 12)); err == nil {
		t.Fatal("two-page secure region accepted")
	}
}

func TestAcceptanceOptimisedOption(t *testing.T) {
	sys, err := komodo.New(komodo.WithOptimisedCrossings(), komodo.WithRefinementChecking())
	if err != nil {
		t.Fatal(err)
	}
	enc := load(t, sys, kasm.AddArgs())
	for i := uint32(0); i < 3; i++ {
		if res, err := enc.Run(i, 1); err != nil || res.Value != i+1 {
			t.Fatalf("optimised run %d: %v %+v", i, err, res)
		}
	}
}
