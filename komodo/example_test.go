package komodo_test

import (
	"fmt"
	"log"

	"repro/internal/arm"
	"repro/internal/asm"
	"repro/internal/kapi"
	"repro/internal/kasm"
	"repro/internal/telemetry"
	"repro/komodo"
)

// Example shows the minimal lifecycle: boot, load, run, destroy.
func Example() {
	sys, err := komodo.New()
	if err != nil {
		log.Fatal(err)
	}
	p := asm.New()
	p.Add(arm.R1, arm.R0, arm.R1) // result = arg1 + arg2
	p.Movw(arm.R0, kapi.SVCExit)
	p.Svc()
	code, _ := p.Assemble(0)

	enc, err := sys.LoadEnclave(komodo.Image{
		Segments: []komodo.Segment{{VA: 0, Exec: true, Words: code}},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, _ := enc.Run(40, 2)
	fmt.Println(res.Value)
	// Output: 42
}

// ExampleSystem_TelemetrySnapshot shows the telemetry subsystem end to
// end: attach an in-memory sink, run an enclave, then read the aggregated
// snapshot — the same data `komodo-sim -stats` prints.
func ExampleSystem_TelemetrySnapshot() {
	sink := &telemetry.MemorySink{}
	sys, err := komodo.New(komodo.WithTelemetrySink(sink))
	if err != nil {
		log.Fatal(err)
	}
	nimg, _ := kasm.AddArgs().Image()
	enc, _ := sys.LoadEnclave(komodo.FromNWOSImage(nimg))
	res, _ := enc.Run(40, 2)
	fmt.Println("result:", res.Value)

	snap := sys.TelemetrySnapshot()
	for _, s := range snap.SMC {
		if s.Call == kapi.SMCEnter {
			// The world-switch mechanics cost the same for every SMC in
			// the unoptimised monitor; the body is the call's own work.
			fmt.Printf("%s: count=%d dispatch=%d\n", s.Name, s.Count, s.DispatchCycles)
		}
	}
	fmt.Println("lifecycle enter/exit:", snap.Lifecycle["enter"], snap.Lifecycle["exit"])
	// Conservation: the sink saw exactly the events the trace ring counted.
	fmt.Println("all events captured:", uint64(sink.Len()) == snap.Trace.Recorded)
	// Output:
	// result: 42
	// KOM_SMC_ENTER: count=1 dispatch=85
	// lifecycle enter/exit: 1 1
	// all events captured: true
}

// ExampleEnclave_Measurement shows that an enclave's identity is a
// deterministic function of its image.
func ExampleEnclave_Measurement() {
	load := func(seed uint64) [8]uint32 {
		sys, _ := komodo.New(komodo.WithSeed(seed))
		nimg, _ := kasm.AddArgs().Image()
		enc, _ := sys.LoadEnclave(komodo.FromNWOSImage(nimg))
		m, _ := enc.Measurement()
		return m
	}
	fmt.Println(load(1) == load(2))
	// Output: true
}

// ExampleEnclave_Resume shows interrupt suspension and resumption: the OS
// regains control mid-execution and continues the thread later.
func ExampleEnclave_Resume() {
	sys, _ := komodo.New()
	nimg, _ := kasm.CountTo().Image()
	enc, _ := sys.LoadEnclave(komodo.FromNWOSImage(nimg))
	sys.ScheduleInterrupt(1000)
	res, _ := enc.Enter(100_000)
	fmt.Println("interrupted:", res.Interrupted)
	res, _ = enc.Resume()
	fmt.Println("result:", res.Value)
	// Output:
	// interrupted: true
	// result: 100000
}
