package komodo_test

import (
	"fmt"
	"log"

	"repro/internal/arm"
	"repro/internal/asm"
	"repro/internal/kapi"
	"repro/internal/kasm"
	"repro/komodo"
)

// Example shows the minimal lifecycle: boot, load, run, destroy.
func Example() {
	sys, err := komodo.New()
	if err != nil {
		log.Fatal(err)
	}
	p := asm.New()
	p.Add(arm.R1, arm.R0, arm.R1) // result = arg1 + arg2
	p.Movw(arm.R0, kapi.SVCExit)
	p.Svc()
	code, _ := p.Assemble(0)

	enc, err := sys.LoadEnclave(komodo.Image{
		Segments: []komodo.Segment{{VA: 0, Exec: true, Words: code}},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, _ := enc.Run(40, 2)
	fmt.Println(res.Value)
	// Output: 42
}

// ExampleEnclave_Measurement shows that an enclave's identity is a
// deterministic function of its image.
func ExampleEnclave_Measurement() {
	load := func(seed uint64) [8]uint32 {
		sys, _ := komodo.New(komodo.WithSeed(seed))
		nimg, _ := kasm.AddArgs().Image()
		enc, _ := sys.LoadEnclave(komodo.FromNWOSImage(nimg))
		m, _ := enc.Measurement()
		return m
	}
	fmt.Println(load(1) == load(2))
	// Output: true
}

// ExampleEnclave_Resume shows interrupt suspension and resumption: the OS
// regains control mid-execution and continues the thread later.
func ExampleEnclave_Resume() {
	sys, _ := komodo.New()
	nimg, _ := kasm.CountTo().Image()
	enc, _ := sys.LoadEnclave(komodo.FromNWOSImage(nimg))
	sys.ScheduleInterrupt(1000)
	res, _ := enc.Enter(100_000)
	fmt.Println("interrupted:", res.Interrupted)
	res, _ = enc.Resume()
	fmt.Println("result:", res.Value)
	// Output:
	// interrupted: true
	// result: 100000
}
