// Package komodo is the public API of the Komodo reproduction: a simulated
// ARM TrustZone platform running the verified-monitor design of "Komodo:
// Using verification to disentangle secure-enclave hardware from software"
// (SOSP 2017), exposed the way a downstream user would consume it.
//
// A System is a booted platform (CPU model, secure/insecure RAM, monitor).
// Enclaves are built from Images (code/data segments plus shared insecure
// regions), executed with Run/Enter/Resume, and attested via their
// measurements. All twelve SMCs and nine SVCs of the paper's Table 1 are
// reachable through this surface; the lower-level packages (machine model,
// functional spec, refinement and noninterference harnesses) live under
// internal/.
//
// Quick start:
//
//	sys, _ := komodo.New()
//	enc, _ := sys.LoadEnclave(img)
//	res, _ := enc.Run(42)
//	fmt.Println(res.Value)
package komodo

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/arm"
	"repro/internal/board"
	"repro/internal/kapi"
	"repro/internal/mem"
	"repro/internal/monitor"
	"repro/internal/nwos"
	"repro/internal/obs"
	"repro/internal/pagedb"
	"repro/internal/refine"
	"repro/internal/telemetry"
)

// Protection selects the isolated-memory hardware variant (§3.2 of the
// paper): an IOMMU-like filter (physical attacks out of scope), on-chip
// scratchpad RAM, or an encryption engine with integrity protection.
type Protection = mem.Protection

const (
	ProtFilter     = mem.ProtFilter
	ProtScratchpad = mem.ProtScratchpad
	ProtEncrypt    = mem.ProtEncrypt
)

// Option configures New.
type Option func(*config)

type config struct {
	seed          uint64
	protection    Protection
	static        bool
	checked       bool
	budget        int64
	secureSize    uint32
	optimised     bool
	telemetry     bool
	sink          telemetry.Sink
	noDecodeCache bool
	noBlockCache  bool
}

// WithSeed sets the hardware RNG seed (default 1). Equal seeds give
// bit-identical simulations.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithProtection selects the secure-memory protection variant.
func WithProtection(p Protection) Option { return func(c *config) { c.protection = p } }

// WithStaticProfile boots the SGXv1-style monitor without dynamic memory
// management (the paper's first Komodo version, §7.3).
func WithStaticProfile() Option { return func(c *config) { c.static = true } }

// WithRefinementChecking routes every monitor call through the runtime
// refinement checker: after each SMC the concrete secure memory is decoded
// and compared against the functional specification. Slower; invaluable in
// tests.
func WithRefinementChecking() Option { return func(c *config) { c.checked = true } }

// WithExecBudget bounds simulated instructions per enclave entry.
func WithExecBudget(n int64) Option { return func(c *config) { c.budget = n } }

// WithSecureMemory sets the size of the secure region in bytes (the
// paper's bootloader "reserves a configurable amount of RAM as secure
// memory", §8.1). Must be a multiple of 4 kB; the monitor reserves two
// pages for itself and manages at most 256 in total.
func WithSecureMemory(bytes uint32) Option { return func(c *config) { c.secureSize = bytes } }

// WithOptimisedCrossings enables the §8.1 crossing optimisations (skip
// the TLB flush on repeated same-enclave entry; lazy banked-register
// accounting). The default is the paper-faithful unoptimised monitor.
func WithOptimisedCrossings() Option { return func(c *config) { c.optimised = true } }

// WithTelemetry attaches a telemetry recorder to the platform: per-SMC
// counters and cycle histograms, lifecycle events, page-movement
// accounting, and a bounded in-memory trace ring. Read the results with
// Telemetry (the live recorder) or TelemetrySnapshot (a JSON-friendly
// summary). Without this option the system is uninstrumented and the
// observation paths cost nothing.
func WithTelemetry() Option { return func(c *config) { c.telemetry = true } }

// WithoutDecodeCache boots the machine with the predecoded-instruction
// cache disabled. The cache is semantically invisible (bit-identical
// execution, pinned by the internal/arm differential tests), so the only
// reason to turn it off is A/B measurement of the simulator itself —
// see docs/PERFORMANCE.md.
func WithoutDecodeCache() Option { return func(c *config) { c.noDecodeCache = true } }

// WithoutBlockCache boots the machine with the superblock translation
// cache disabled, leaving the per-instruction interpreter path (and the
// decode cache, unless WithoutDecodeCache is also given). Like the decode
// cache, the block cache is semantically invisible — pinned by the
// internal/arm block differential and fuzz harnesses — so this knob
// exists only for A/B measurement. See docs/PERFORMANCE.md.
func WithoutBlockCache() Option { return func(c *config) { c.noBlockCache = true } }

// WithTelemetrySink attaches a telemetry recorder that forwards every
// trace event to s as it happens (e.g. a telemetry.MemorySink for tests,
// or a telemetry.JSONLSink streaming to a file). Implies WithTelemetry.
func WithTelemetrySink(s telemetry.Sink) Option {
	return func(c *config) { c.telemetry = true; c.sink = s }
}

// System is a booted Komodo platform.
type System struct {
	plat *board.Platform
	os   *nwos.OS
	cfg  config
}

// BootConfig is the reproducible subset of a System's boot configuration:
// everything a fresh process needs to boot a behaviourally identical
// platform. The record/replay layer (internal/replay) embeds one in every
// trace header. Telemetry attachment is deliberately absent — recorders
// are observation, not machine state.
type BootConfig struct {
	Seed          uint64
	Protection    Protection
	Static        bool
	Checked       bool
	Optimised     bool
	Budget        int64
	SecureSize    uint32
	NoDecodeCache bool
	NoBlockCache  bool
}

// BootConfig reports the configuration this system was booted with.
func (s *System) BootConfig() BootConfig {
	return BootConfig{
		Seed:          s.cfg.seed,
		Protection:    s.cfg.protection,
		Static:        s.cfg.static,
		Checked:       s.cfg.checked,
		Optimised:     s.cfg.optimised,
		Budget:        s.cfg.budget,
		SecureSize:    s.cfg.secureSize,
		NoDecodeCache: s.cfg.noDecodeCache,
		NoBlockCache:  s.cfg.noBlockCache,
	}
}

// Options reconstructs the option list that reproduces this configuration
// on a fresh New call (telemetry options excluded).
func (bc BootConfig) Options() []Option {
	opts := []Option{WithSeed(bc.Seed), WithProtection(bc.Protection)}
	if bc.Static {
		opts = append(opts, WithStaticProfile())
	}
	if bc.Checked {
		opts = append(opts, WithRefinementChecking())
	}
	if bc.Optimised {
		opts = append(opts, WithOptimisedCrossings())
	}
	if bc.Budget != 0 {
		opts = append(opts, WithExecBudget(bc.Budget))
	}
	if bc.SecureSize != 0 {
		opts = append(opts, WithSecureMemory(bc.SecureSize))
	}
	if bc.NoDecodeCache {
		opts = append(opts, WithoutDecodeCache())
	}
	if bc.NoBlockCache {
		opts = append(opts, WithoutBlockCache())
	}
	return opts
}

// New boots a platform.
func New(opts ...Option) (*System, error) {
	c := config{seed: 1}
	for _, o := range opts {
		o(&c)
	}
	bc := board.Config{
		Seed:               c.seed,
		Protection:         c.protection,
		Monitor:            monitor.Config{StaticProfile: c.static, ExecBudget: c.budget, Optimised: c.optimised},
		DisableDecodeCache: c.noDecodeCache,
		DisableBlockCache:  c.noBlockCache,
	}
	if c.telemetry {
		rec := telemetry.New()
		if c.sink != nil {
			rec.SetSink(c.sink)
		}
		bc.Telemetry = rec
	}
	if c.secureSize != 0 {
		l := mem.DefaultLayout()
		l.Protection = c.protection
		l.SecureSize = c.secureSize
		bc.Layout = &l
	}
	plat, err := board.Boot(bc)
	if err != nil {
		return nil, err
	}
	var drv nwos.Driver = plat.Monitor
	if c.checked {
		drv = refine.New(plat.Monitor)
	}
	osm := nwos.New(plat.Machine, drv, plat.Monitor.NPages())
	osm.SetTelemetry(plat.Telemetry)
	return &System{plat: plat, os: osm, cfg: c}, nil
}

// Telemetry returns the recorder attached by WithTelemetry, or nil. The
// nil recorder is safe to pass around: every observation and accessor on
// it is a no-op.
func (s *System) Telemetry() *telemetry.Recorder { return s.plat.Telemetry }

// TelemetrySnapshot summarises the platform's counters — per-call series,
// lifecycle and page-movement tallies, instruction classes, TLB and
// PageDB census — as one JSON-serialisable value.
func (s *System) TelemetrySnapshot() telemetry.Snapshot { return s.plat.StatsSnapshot() }

// PhysPages returns the number of allocatable secure pages, as reported by
// the GetPhysPages monitor call.
func (s *System) PhysPages() (int, error) {
	e, v, err := s.os.SMC(kapi.SMCGetPhysPages)
	if err != nil {
		return 0, err
	}
	if e != kapi.ErrSuccess {
		return 0, e
	}
	return int(v), nil
}

// Machine exposes the underlying simulated machine for advanced use
// (interrupt injection, cycle accounting, physical-attack simulation).
func (s *System) Machine() *arm.Machine { return s.plat.Machine }

// Monitor exposes the monitor (verification harnesses).
func (s *System) Monitor() *monitor.Monitor { return s.plat.Monitor }

// OS exposes the normal-world OS model.
func (s *System) OS() *nwos.OS { return s.os }

// Cycles returns the simulated cycle counter's current total.
func (s *System) Cycles() uint64 { return s.plat.Machine.Cyc.Total() }

// Segment is one virtual-memory region of an enclave image. Word contents
// are padded to whole 4 kB pages.
type Segment struct {
	VA    uint32
	Write bool
	Exec  bool
	Words []uint32
}

// SharedRegion asks for insecure pages shared with the OS mapped into the
// enclave at VA.
type SharedRegion struct {
	VA    uint32
	Write bool
	Pages int
}

// Image describes an enclave to load.
type Image struct {
	Entry    uint32
	Segments []Segment
	Shared   []SharedRegion
	// Spares allocates spare pages for SGXv2-style dynamic memory.
	Spares int
	// ExtraThreads creates additional threads at the given entry points;
	// all threads share the address space but suspend independently.
	ExtraThreads []uint32
}

// FromNWOSImage converts an OS-model image (e.g. one produced by the
// internal/kasm guest library) into a facade Image.
func FromNWOSImage(n nwos.Image) Image {
	img := Image{Entry: n.Entry, Spares: n.Spares}
	for _, s := range n.Segments {
		img.Segments = append(img.Segments, Segment{VA: s.VA, Write: s.Write, Exec: s.Exec, Words: s.Words})
	}
	for _, sh := range n.Shared {
		img.Shared = append(img.Shared, SharedRegion{VA: sh.VA, Write: sh.Write, Pages: sh.Pages})
	}
	return img
}

// Enclave is a loaded, finalised enclave.
type Enclave struct {
	sys *System
	enc *nwos.Enclave
}

// LoadEnclave builds and finalises an enclave from the image, driving the
// construction SMC sequence of the paper's §4.
func (s *System) LoadEnclave(img Image) (*Enclave, error) {
	var nimg nwos.Image
	nimg.Entry = img.Entry
	for _, seg := range img.Segments {
		nimg.Segments = append(nimg.Segments, nwos.Segment{
			VA: seg.VA, Write: seg.Write, Exec: seg.Exec, Words: seg.Words,
		})
	}
	for _, sh := range img.Shared {
		nimg.Shared = append(nimg.Shared, nwos.Shared{VA: sh.VA, Write: sh.Write, Pages: sh.Pages})
	}
	nimg.Spares = img.Spares
	nimg.ExtraThreads = img.ExtraThreads
	enc, err := s.os.BuildEnclave(nimg)
	if err != nil {
		return nil, err
	}
	return &Enclave{sys: s, enc: enc}, nil
}

// Result is the outcome of an enclave execution.
type Result struct {
	// Value is the Exit value (normal completion), or the exception type
	// code for Interrupted/Faulted results — the only information the
	// monitor releases about enclave execution.
	Value uint32
	// Interrupted reports suspension by an interrupt; Resume continues.
	Interrupted bool
	// Faulted reports that the enclave raised an exception and exited.
	Faulted bool
}

// ErrEnclave wraps monitor error codes surfaced as Go errors.
var ErrEnclave = errors.New("komodo: monitor rejected call")

func (e *Enclave) result(errc kapi.Err, val uint32) (Result, error) {
	switch errc {
	case kapi.ErrSuccess:
		return Result{Value: val}, nil
	case kapi.ErrInterrupted:
		return Result{Value: val, Interrupted: true}, nil
	case kapi.ErrFault:
		return Result{Value: val, Faulted: true}, nil
	default:
		return Result{}, fmt.Errorf("%w: %v", ErrEnclave, errc)
	}
}

// Enter starts the enclave thread with up to three arguments.
func (e *Enclave) Enter(args ...uint32) (Result, error) {
	errc, val, err := e.sys.os.Enter(e.enc, args...)
	if err != nil {
		return Result{}, err
	}
	return e.result(errc, val)
}

// Resume continues a thread suspended by an interrupt.
func (e *Enclave) Resume() (Result, error) {
	errc, val, err := e.sys.os.Resume(e.enc)
	if err != nil {
		return Result{}, err
	}
	return e.result(errc, val)
}

// Threads reports how many threads the enclave has.
func (e *Enclave) Threads() int { return len(e.enc.Threads) }

// EnterThread starts a specific thread (0 = the primary).
func (e *Enclave) EnterThread(idx int, args ...uint32) (Result, error) {
	if idx < 0 || idx >= len(e.enc.Threads) {
		return Result{}, fmt.Errorf("komodo: no thread %d", idx)
	}
	errc, val, err := e.sys.os.EnterThread(e.enc, idx, args...)
	if err != nil {
		return Result{}, err
	}
	return e.result(errc, val)
}

// ResumeThread resumes a specific suspended thread.
func (e *Enclave) ResumeThread(idx int) (Result, error) {
	if idx < 0 || idx >= len(e.enc.Threads) {
		return Result{}, fmt.Errorf("komodo: no thread %d", idx)
	}
	errc, val, err := e.sys.os.ResumeThread(e.enc, idx)
	if err != nil {
		return Result{}, err
	}
	return e.result(errc, val)
}

// Run enters the enclave and transparently resumes across interrupts until
// it exits or faults.
func (e *Enclave) Run(args ...uint32) (Result, error) {
	errc, val, err := e.sys.os.RunToCompletion(e.enc, args...)
	if err != nil {
		return Result{}, err
	}
	return e.result(errc, val)
}

// crossingDetail names how a world crossing came back, for span details.
func crossingDetail(errc kapi.Err, err error) string {
	switch {
	case err != nil:
		return "error"
	case errc == kapi.ErrSuccess:
		return "exit"
	case errc == kapi.ErrInterrupted:
		return "interrupted"
	case errc == kapi.ErrFault:
		return "fault"
	default:
		return fmt.Sprintf("err=%v", errc)
	}
}

// EnterCtx is Enter with a request context: when ctx carries an
// observability trace (internal/obs), the world crossing — dispatch
// through the monitor into the enclave and back — is recorded as an
// "enclave.enter" span. The simulated cycle cost of the same crossing
// appears separately as the monitor-level SMC span harvested from the
// telemetry recorder; this span is its wall-clock shadow.
func (e *Enclave) EnterCtx(ctx context.Context, args ...uint32) (Result, error) {
	sp := obs.FromContext(ctx).StartSpan("enclave.enter")
	errc, val, err := e.sys.os.Enter(e.enc, args...)
	sp.EndDetail(crossingDetail(errc, err))
	if err != nil {
		return Result{}, err
	}
	return e.result(errc, val)
}

// ResumeCtx is Resume with a request context, recorded as an
// "enclave.resume" span (see EnterCtx).
func (e *Enclave) ResumeCtx(ctx context.Context) (Result, error) {
	sp := obs.FromContext(ctx).StartSpan("enclave.resume")
	errc, val, err := e.sys.os.Resume(e.enc)
	sp.EndDetail(crossingDetail(errc, err))
	if err != nil {
		return Result{}, err
	}
	return e.result(errc, val)
}

// RunCtx is Run with a request context: the initial enter and every
// interrupt resume each get their own span, so a trace shows how many
// times the enclave was suspended on the way to its exit.
func (e *Enclave) RunCtx(ctx context.Context, args ...uint32) (Result, error) {
	res, err := e.EnterCtx(ctx, args...)
	for err == nil && res.Interrupted {
		res, err = e.ResumeCtx(ctx)
	}
	return res, err
}

// Measurement returns the enclave's attestation measurement (public).
// Like a stats snapshot, this is an out-of-band observation: the cycle
// counter is rewound around the PageDB decode so reading a measurement
// never perturbs the simulated timeline (record/replay depends on this).
func (e *Enclave) Measurement() ([8]uint32, error) {
	m := e.sys.plat.Machine
	before := m.Cyc.Total()
	db, err := e.sys.plat.Monitor.DecodePageDB()
	m.Cyc.Reset()
	m.Cyc.Charge(before)
	if err != nil {
		return [8]uint32{}, err
	}
	as := db.Addrspace(e.enc.AS)
	if as == nil {
		return [8]uint32{}, fmt.Errorf("komodo: enclave destroyed")
	}
	return as.Measured, nil
}

// SparePages returns the page numbers of the enclave's spare pages, which
// enclave code needs for the dynamic-memory SVCs.
func (e *Enclave) SparePages() []uint32 {
	out := make([]uint32, len(e.enc.Spares))
	for i, p := range e.enc.Spares {
		out[i] = uint32(p)
	}
	return out
}

// WriteShared writes words into shared region idx at the given word
// offset (normal-world access).
func (e *Enclave) WriteShared(idx int, wordOff int, words []uint32) error {
	if idx >= len(e.enc.SharedPA) {
		return fmt.Errorf("komodo: no shared region %d", idx)
	}
	return e.sys.os.WriteInsecure(e.enc.SharedPA[idx]+uint32(wordOff*4), words)
}

// ReadShared reads n words from shared region idx at the word offset.
func (e *Enclave) ReadShared(idx int, wordOff, n int) ([]uint32, error) {
	if idx >= len(e.enc.SharedPA) {
		return nil, fmt.Errorf("komodo: no shared region %d", idx)
	}
	return e.sys.os.ReadInsecure(e.enc.SharedPA[idx]+uint32(wordOff*4), n)
}

// Destroy stops the enclave and releases all its pages.
func (e *Enclave) Destroy() error { return e.sys.os.Destroy(e.enc) }

// ScheduleInterrupt injects an IRQ after n simulated instructions — the
// knob tests and demos use to exercise suspend/resume.
func (s *System) ScheduleInterrupt(afterInstructions int64) {
	s.os.ScheduleInterrupt(afterInstructions)
}

// Snapshot captures the entire platform state (registers, memory, devices,
// cycle counter). Restore rewinds to it; the simulation then replays
// bit-identically. Snapshots do not capture the OS model's allocator
// bookkeeping — fork at quiescent points (no half-built enclaves).
type Snapshot = arm.Snapshot

// Snapshot captures the platform.
func (s *System) Snapshot() *Snapshot { return s.plat.Machine.Snapshot() }

// Restore rewinds the platform to a snapshot taken from this System (or an
// identically configured one).
//
// The golden-snapshot clone contract (pinned by TestRestoreGoldenBitIdentical
// and relied on by internal/pool): a snapshot taken at a quiescent point —
// enclaves finalised, nothing mid-SMC — can be restored any number of
// times, and each restore yields a bit-identical re-run: same enclave
// measurements, same MACs, same RNG stream, same cycle counts. Enclave
// handles created before the snapshot remain valid after a restore,
// because the OS-model bookkeeping they carry describes exactly the state
// the machine rewinds to. State created *after* the snapshot (enclaves
// loaded, counters advanced) is discarded by the restore; handles to such
// enclaves must not be used again.
func (s *System) Restore(snap *Snapshot) error { return s.plat.Machine.Restore(snap) }

// Pages gives access to the raw page handle of an enclave for advanced
// scenarios (the OS model's view).
func (e *Enclave) Pages() *nwos.Enclave { return e.enc }

// AddrspacePage returns the enclave's address-space page number.
func (e *Enclave) AddrspacePage() uint32 { return uint32(e.enc.AS) }

// PageNr re-exports the page-number type for advanced callers.
type PageNr = pagedb.PageNr
