package komodo_test

import (
	"testing"

	"repro/internal/kasm"
	"repro/komodo"
)

// TestRestoreGoldenBitIdentical pins the clone contract the serving
// pool's provisioning depends on (internal/pool): restoring a golden
// snapshot taken at a quiescent point yields a bit-identical re-run —
// same measurement, same outputs, same cycle count — and enclave handles
// created before the snapshot stay valid afterwards.
func TestRestoreGoldenBitIdentical(t *testing.T) {
	sys, err := komodo.New(komodo.WithSeed(1234))
	if err != nil {
		t.Fatal(err)
	}
	nimg, err := kasm.NotaryGuest(1).Image()
	if err != nil {
		t.Fatal(err)
	}
	notary, err := sys.LoadEnclave(komodo.FromNWOSImage(nimg))
	if err != nil {
		t.Fatal(err)
	}
	golden := sys.Snapshot()
	cycles0 := sys.Cycles()
	meas0, err := notary.Measurement()
	if err != nil {
		t.Fatal(err)
	}

	doc := make([]uint32, 32)
	for i := range doc {
		doc[i] = uint32(i) * 7
	}
	run := func() (counter uint32, mac []uint32, cycles uint64) {
		t.Helper()
		if err := notary.WriteShared(0, 0, doc); err != nil {
			t.Fatal(err)
		}
		res, err := notary.Run(uint32(len(doc)))
		if err != nil {
			t.Fatal(err)
		}
		mac, err = notary.ReadShared(0, 0, 8)
		if err != nil {
			t.Fatal(err)
		}
		return res.Value, mac, sys.Cycles()
	}

	c1, mac1, cyc1 := run()
	if c1 != 1 {
		t.Fatalf("fresh notary counter = %d, want 1", c1)
	}

	if err := sys.Restore(golden); err != nil {
		t.Fatal(err)
	}
	if got := sys.Cycles(); got != cycles0 {
		t.Fatalf("cycle counter after restore: %d, want %d", got, cycles0)
	}
	meas1, err := notary.Measurement()
	if err != nil {
		t.Fatalf("enclave handle invalid after restore: %v", err)
	}
	if meas1 != meas0 {
		t.Fatalf("measurement changed across restore: %08x vs %08x", meas1[0], meas0[0])
	}

	c2, mac2, cyc2 := run()
	if c2 != c1 {
		t.Fatalf("replayed counter = %d, want %d", c2, c1)
	}
	for i := range mac1 {
		if mac1[i] != mac2[i] {
			t.Fatalf("replayed MAC diverged at word %d: %08x vs %08x", i, mac1[i], mac2[i])
		}
	}
	if cyc1 != cyc2 {
		t.Fatalf("replayed run cost %d cycles, first run cost %d", cyc2, cyc1)
	}

	// Without a restore the counter advances and the MAC changes: the
	// clone contract is about the restore, not about the workload being
	// constant.
	c3, mac3, _ := run()
	if c3 != c2+1 {
		t.Fatalf("counter did not advance without restore: %d after %d", c3, c2)
	}
	same := true
	for i := range mac2 {
		if mac2[i] != mac3[i] {
			same = false
		}
	}
	if same {
		t.Fatal("MAC identical for different counters")
	}

	// Restoring again from the same golden snapshot still works: one
	// snapshot serves arbitrarily many clones.
	if err := sys.Restore(golden); err != nil {
		t.Fatal(err)
	}
	c4, _, _ := run()
	if c4 != 1 {
		t.Fatalf("second clone counter = %d, want 1", c4)
	}
}
