// Self-paging: the dispatcher interface of the paper's §9.2 future work,
// implemented as an extension. The enclave registers a fault handler;
// when it touches an unmapped page, the monitor delivers the fault to the
// handler (an in-enclave upcall) instead of the OS. The handler services
// the "page fault" itself by mapping a spare page there with MapData and
// resumes the faulting instruction with FaultReturn.
//
// The punchline is the controlled-channel defence taken to its
// conclusion: the OS never learns the fault happened at all — it sees one
// ordinary, successful enclave call.
//
//	go run ./examples/selfpaging
package main

import (
	"fmt"
	"log"

	"repro/internal/kasm"
	"repro/komodo"
)

func main() {
	sys, err := komodo.New(komodo.WithRefinementChecking())
	if err != nil {
		log.Fatal(err)
	}
	nimg, err := kasm.SelfPager().Image()
	if err != nil {
		log.Fatal(err)
	}
	enc, err := sys.LoadEnclave(komodo.FromNWOSImage(nimg))
	if err != nil {
		log.Fatal(err)
	}
	spares := enc.SparePages()
	fmt.Printf("enclave loaded; address %#x is UNMAPPED; spare page %d on standby\n",
		uint32(kasm.DynVA), spares[0])
	fmt.Println("enclave will: register handler -> store to the unmapped page ->")
	fmt.Println("  [fault -> in-enclave handler MapData's the spare -> FaultReturn] ->")
	fmt.Println("  store retries -> load back -> exit")

	res, err := enc.Run(spares[0])
	if err != nil {
		log.Fatal(err)
	}
	if res.Faulted || res.Interrupted {
		log.Fatalf("fault leaked to the OS: %+v", res)
	}
	fmt.Printf("OS observed: one clean enclave call returning %#x\n", res.Value)
	fmt.Println("the page fault happened, was serviced, and the OS saw NOTHING of it —")
	fmt.Println("\"enclave self-paging... without exposing page faults to the untrusted OS\" (§9.2)")
}
