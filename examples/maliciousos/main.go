// Malicious OS: the threat model (§3.1) made concrete. The OS controls all
// privileged software — it allocates every page, maps every address, and
// schedules every enclave — yet every attack below is stopped by the
// monitor or the hardware partition:
//
//  1. direct reads/writes of secure RAM from the normal world;
//
//  2. DMA into secure RAM (the TZASC treats device traffic as normal-world);
//
//  3. API abuse: double allocation, aliased arguments, cross-enclave page
//     theft, secure-RAM as a MapSecure source, re-entering a running
//     thread, mapping pages into a finalised enclave (the
//     controlled-channel defence: the OS cannot manipulate a running
//     enclave's address space, so it cannot induce or observe page faults);
//
//  4. physical attacks: bus snooping and cold-boot reads under the three
//     §3.2 protection variants.
//
//     go run ./examples/maliciousos
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/kapi"
	"repro/internal/kasm"
	"repro/internal/mem"
	"repro/komodo"
)

func main() {
	fmt.Println("=== attacks by software (OS with full privileged control) ===")
	softwareAttacks()
	fmt.Println()
	fmt.Println("=== attacks by physics (bus snooping / cold boot, §3.2 variants) ===")
	physicalAttacks()
}

func loadVictim(sys *komodo.System) *komodo.Enclave {
	g := kasm.ComputeOnSecret()
	nimg, err := g.Image()
	if err != nil {
		log.Fatal(err)
	}
	img := komodo.Image{Entry: nimg.Entry}
	for _, s := range nimg.Segments {
		img.Segments = append(img.Segments, komodo.Segment{VA: s.VA, Write: s.Write, Exec: s.Exec, Words: s.Words})
	}
	enc, err := sys.LoadEnclave(img)
	if err != nil {
		log.Fatal(err)
	}
	return enc
}

func expect(what string, got kapi.Err, want kapi.Err) {
	status := "BLOCKED"
	if got != want {
		status = fmt.Sprintf("UNEXPECTED (%v, wanted %v)", got, want)
	}
	fmt.Printf("  %-58s %s (%v)\n", what, status, got)
}

func softwareAttacks() {
	sys, err := komodo.New(komodo.WithRefinementChecking())
	if err != nil {
		log.Fatal(err)
	}
	victim := loadVictim(sys)
	m := sys.Machine()
	drv := sys.OS().Driver()
	victimPages := victim.Pages()

	// 1. Direct access to secure RAM.
	secBase := m.Phys.Layout().SecureBase
	if _, err := m.Phys.Read(secBase, mem.Normal); errors.Is(err, mem.ErrSecureViolation) {
		fmt.Printf("  %-58s BLOCKED (%v)\n", "normal-world read of secure RAM", "TZASC violation")
	} else {
		fmt.Println("  normal-world read of secure RAM SUCCEEDED — broken!")
	}
	if err := m.Phys.Write(secBase, 0xdead, mem.Normal); !errors.Is(err, mem.ErrSecureViolation) {
		fmt.Println("  normal-world write of secure RAM SUCCEEDED — broken!")
	} else {
		fmt.Printf("  %-58s BLOCKED (TZASC violation)\n", "normal-world write of secure RAM")
	}
	// 2. DMA (devices are normal-world initiators through the IOMMU).
	if err := m.Phys.Write(secBase+0x1000, 0xdead, mem.Normal); errors.Is(err, mem.ErrSecureViolation) {
		fmt.Printf("  %-58s BLOCKED (IOMMU filter)\n", "DMA write into secure RAM")
	}

	// 3. API abuse.
	e, _, _ := drv.SMC(kapi.SMCInitAddrspace, 40, 40)
	expect("InitAddrspace with aliased pages (the §9.1 bug)", e, kapi.ErrInvalidArg)

	e, _, _ = drv.SMC(kapi.SMCInitAddrspace, uint32(victimPages.AS), 41)
	expect("re-allocating the victim's addrspace page", e, kapi.ErrPageInUse)

	e, _, _ = drv.SMC(kapi.SMCMapSecure, uint32(victimPages.AS), uint32(victimPages.Data[0]),
		uint32(kapi.NewMapping(0x5000, true, false)), m.Phys.Layout().InsecureBase)
	expect("stealing a victim data page via MapSecure", e, kapi.ErrAlreadyFinal)

	e, _, _ = drv.SMC(kapi.SMCMapSecure, 40, 41,
		uint32(kapi.NewMapping(0x5000, true, false)), m.Phys.Layout().SecureBase)
	expect("MapSecure sourcing from secure RAM (monitor-alias check)", e, kapi.ErrInvalidAddrspace)

	e, _, _ = drv.SMC(kapi.SMCInitThread, uint32(victimPages.AS), 41, 0x4444)
	expect("adding a rogue thread to the finalised victim", e, kapi.ErrAlreadyFinal)

	e, _, _ = drv.SMC(kapi.SMCMapInsecure, uint32(victimPages.AS),
		uint32(kapi.NewMapping(0x6000, true, false)), m.Phys.Layout().InsecureBase)
	expect("mapping OS memory into the finalised victim", e, kapi.ErrAlreadyFinal)

	e, _, _ = drv.SMC(kapi.SMCRemove, uint32(victimPages.Data[0]))
	expect("freeing a live victim page (controlled-channel denial)", e, kapi.ErrNotStopped)

	// Suspend a long-running enclave mid-execution, then try to
	// double-enter it.
	sg := kasm.CountTo()
	snimg, err := sg.Image()
	if err != nil {
		log.Fatal(err)
	}
	simg := komodo.Image{Entry: snimg.Entry}
	for _, s := range snimg.Segments {
		simg.Segments = append(simg.Segments, komodo.Segment{VA: s.VA, Write: s.Write, Exec: s.Exec, Words: s.Words})
	}
	spinner, err := sys.LoadEnclave(simg)
	if err != nil {
		log.Fatal(err)
	}
	sys.ScheduleInterrupt(1000)
	res, err := spinner.Enter(1_000_000)
	if err != nil || !res.Interrupted {
		log.Fatalf("suspension failed: %v %+v", err, res)
	}
	e, _, _ = drv.SMC(kapi.SMCEnter, uint32(spinner.Pages().Thread), 0, 0, 0)
	expect("re-entering a suspended thread", e, kapi.ErrAlreadyEntered)
	if _, err := spinner.Resume(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("  (and because the OS cannot touch a finalised enclave's tables, it cannot")
	fmt.Println("   induce page faults: Komodo is immune to controlled-channel attacks, §3.1)")
}

func physicalAttacks() {
	secret := uint32(0x5ec2e7e7)
	for _, variant := range []struct {
		prot komodo.Protection
		name string
	}{
		{komodo.ProtFilter, "IOMMU filter only"},
		{komodo.ProtEncrypt, "encryption + integrity engine"},
		{komodo.ProtScratchpad, "on-chip scratchpad"},
	} {
		sys, err := komodo.New(komodo.WithProtection(variant.prot))
		if err != nil {
			log.Fatal(err)
		}
		victim := loadVictim(sys)
		// Plant a known value in the victim's data page so the snoop has
		// something to find.
		phys := sys.Machine().Phys
		dataPA := phys.SecurePageBase(int(victim.Pages().Data[len(victim.Pages().Data)-1]) + 2)
		phys.Write(dataPA, secret, mem.Secure)

		snooped, err := phys.SnoopDRAM(dataPA)
		switch {
		case errors.Is(err, mem.ErrShielded):
			fmt.Printf("  %-34s cold-boot read: BLOCKED (not externally addressable)\n", variant.name)
		case err != nil:
			fmt.Printf("  %-34s cold-boot read: error %v\n", variant.name, err)
		case snooped == secret:
			fmt.Printf("  %-34s cold-boot read: PLAINTEXT %#x (physical attacks out of scope here)\n", variant.name, snooped)
		default:
			fmt.Printf("  %-34s cold-boot read: ciphertext %#x\n", variant.name, snooped)
		}

		if variant.prot == komodo.ProtEncrypt {
			// Tampering is detected on the next access.
			if err := phys.TamperDRAM(dataPA, 0xffffffff); err != nil {
				log.Fatal(err)
			}
			if _, err := phys.Read(dataPA, mem.Secure); errors.Is(err, mem.ErrIntegrity) {
				fmt.Printf("  %-34s DRAM tampering: DETECTED on next access\n", variant.name)
			} else {
				fmt.Printf("  %-34s DRAM tampering: NOT detected — broken!\n", variant.name)
			}
		}
	}
}
