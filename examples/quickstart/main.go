// Quickstart: boot a Komodo platform, load a tiny enclave, run it, and
// read its measurement — the minimal end-to-end flow of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/arm"
	"repro/internal/asm"
	"repro/internal/kapi"
	"repro/komodo"
)

func main() {
	// 1. Boot the platform: simulated TrustZone CPU, secure/insecure RAM,
	// the monitor installed by the bootloader. Refinement checking makes
	// every monitor call verify itself against the functional spec.
	sys, err := komodo.New(komodo.WithRefinementChecking())
	if err != nil {
		log.Fatal(err)
	}
	n, err := sys.PhysPages()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booted: %d secure pages available\n", n)

	// 2. Write an enclave program. The guest receives Enter's arguments
	// in R0–R2 and exits through the monitor's Exit supervisor call with
	// its result in R1.
	p := asm.New()
	p.Add(arm.R1, arm.R0, arm.R1) // result = arg1 + arg2
	p.Movw(arm.R0, kapi.SVCExit)
	p.Svc()
	code, err := p.Assemble(0)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Load it: one execute-only code page at VA 0, entry at VA 0. The
	// OS stages the image in insecure memory; the monitor copies and
	// measures it page by page (MapSecure), then the enclave is finalised.
	enc, err := sys.LoadEnclave(komodo.Image{
		Entry: 0,
		Segments: []komodo.Segment{
			{VA: 0, Exec: true, Words: code},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. The measurement is the enclave's attestable identity: a SHA-256
	// over the construction trace (pages, permissions, contents, entry
	// points).
	m, err := enc.Measurement()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measurement: %08x%08x…\n", m[0], m[1])

	// 5. Run it.
	res, err := enc.Run(40, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enclave says: 40 + 2 = %d\n", res.Value)

	// 6. Tear it down; the monitor scrubs and releases every page.
	if err := enc.Destroy(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("enclave destroyed")
}
