// Vault: a credential-protection enclave — the class of application the
// paper's introduction motivates (e.g. "Using Intel SGX to protect on-line
// credentials"). The enclave guards a hardware-random secret behind a
// password with a constant-time comparison and a three-strikes lockout.
// The OS relays passwords and receives verdicts, but it cannot read the
// secret, reset the lockout counter, or brute-force offline: the counter
// lives in enclave-private memory the monitor isolates.
//
//	go run ./examples/vault
package main

import (
	"fmt"
	"log"

	"repro/internal/kasm"
	"repro/komodo"
)

func main() {
	sys, err := komodo.New(komodo.WithSeed(0x7a017), komodo.WithRefinementChecking())
	if err != nil {
		log.Fatal(err)
	}
	nimg, err := kasm.Vault().Image()
	if err != nil {
		log.Fatal(err)
	}
	vault, err := sys.LoadEnclave(komodo.FromNWOSImage(nimg))
	if err != nil {
		log.Fatal(err)
	}

	password := []uint32{0xcafe, 0xf00d, 0x1234, 0x5678}

	// Provision: the enclave stores the password and draws a secret from
	// the hardware RNG.
	if err := vault.WriteShared(0, 0, password); err != nil {
		log.Fatal(err)
	}
	if res, err := vault.Run(0); err != nil || res.Value != 1 {
		log.Fatalf("provision failed: %v %+v", err, res)
	}
	fmt.Println("vault provisioned: secret sealed inside the enclave")

	attempt := func(pw []uint32) uint32 {
		if err := vault.WriteShared(0, 0, pw); err != nil {
			log.Fatal(err)
		}
		res, err := vault.Run(1)
		if err != nil {
			log.Fatal(err)
		}
		return res.Value
	}

	// Correct password: the secret is released into shared memory.
	if attempt(password) != 1 {
		log.Fatal("correct password rejected")
	}
	secret, _ := vault.ReadShared(0, 4, 4)
	fmt.Printf("correct password -> secret released: %08x %08x…\n", secret[0], secret[1])

	// The OS tries to brute-force.
	fmt.Println("OS brute-forcing:")
	for i := 0; i < 3; i++ {
		guess := []uint32{uint32(i), 0, 0, 0}
		v := attempt(guess)
		fmt.Printf("  guess %d -> verdict %d\n", i+1, v)
	}
	// Even the CORRECT password is now refused: lockout is enclave state.
	if v := attempt(password); v != kasm.VaultLockedOut {
		log.Fatalf("vault not locked out (verdict %#x)", v)
	}
	fmt.Println("after 3 failures the vault is sealed — even the real password is refused,")
	fmt.Println("and the OS has no way to reset the counter (it lives in secure memory)")
}
