// Notary: the paper's §8.2 application. The enclave "assigns logical
// timestamps to documents so they can be conclusively ordered": it hashes
// each submitted document together with a monotonic counter and returns an
// attestation (MAC) binding the digest to the notary's measured identity.
// The OS — which is untrusted — can neither forge a notarisation nor roll
// the counter back.
//
//	go run ./examples/notary
package main

import (
	"fmt"
	"log"

	"repro/internal/kasm"
	"repro/internal/sha2"
	"repro/komodo"
)

func main() {
	sys, err := komodo.New(komodo.WithSeed(2026))
	if err != nil {
		log.Fatal(err)
	}

	// The notary guest: KARM assembly running SHA-256 in-enclave, with
	// the document passed through a shared insecure region.
	g := kasm.NotaryGuest(4) // up to 16 kB documents
	nimg, err := g.Image()
	if err != nil {
		log.Fatal(err)
	}
	img := komodo.Image{Entry: nimg.Entry}
	for _, s := range nimg.Segments {
		img.Segments = append(img.Segments, komodo.Segment{VA: s.VA, Write: s.Write, Exec: s.Exec, Words: s.Words})
	}
	for _, sh := range nimg.Shared {
		img.Shared = append(img.Shared, komodo.SharedRegion{VA: sh.VA, Write: sh.Write, Pages: sh.Pages})
	}
	notary, err := sys.LoadEnclave(img)
	if err != nil {
		log.Fatal(err)
	}
	meas, err := notary.Measurement()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("notary loaded; identity %08x%08x…\n", meas[0], meas[1])

	notarise := func(label string, doc []uint32) (counter uint32, mac []uint32) {
		if err := notary.WriteShared(0, 0, doc); err != nil {
			log.Fatal(err)
		}
		res, err := notary.Run(uint32(len(doc)))
		if err != nil {
			log.Fatal(err)
		}
		mac, err = notary.ReadShared(0, 0, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s -> timestamp %d, MAC %08x%08x…\n", label, res.Value, mac[0], mac[1])
		return res.Value, mac
	}

	docA := make([]uint32, 64)
	for i := range docA {
		docA[i] = uint32(i) // "contract A"
	}
	docB := make([]uint32, 64)
	for i := range docB {
		docB[i] = uint32(i) * 3 // "contract B"
	}

	c1, _ := notarise("contract A", docA)
	c2, _ := notarise("contract B", docB)
	c3, mac3 := notarise("contract A", docA) // re-notarise A later
	if !(c1 < c2 && c2 < c3) {
		log.Fatal("counter not monotonic!")
	}
	fmt.Println("timestamps are strictly ordered: the notary's counter cannot be rolled back")

	// Anyone holding the notary's measurement can check a notarisation
	// offline given the platform attestation key holder's cooperation —
	// here we recompute what the monitor MAC'd to show the binding.
	h := sha2.New()
	h.WriteWords(docA)
	h.WriteWords([]uint32{c3})
	digest := h.SumWords()
	fmt.Printf("document A at time %d binds digest %08x… into MAC %08x…\n", c3, digest[0], mac3[0])

	// Tampering with the document after notarisation is evident: the
	// digest (and hence any verifying party's check) changes.
	docA[0] ^= 1
	h2 := sha2.New()
	h2.WriteWords(docA)
	h2.WriteWords([]uint32{c3})
	if h2.SumWords() == digest {
		log.Fatal("tampered document produced the same digest")
	}
	fmt.Println("tampered document no longer matches the notarised digest")
}
