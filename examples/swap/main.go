// Encrypted swap: the complete §9.2 composition. The enclave manages its
// own memory: it evicts a page to UNTRUSTED memory under its own
// encryption, hands the physical page back to the OS's spare pool, and
// demand-faults the page back in later through its fault handler. The OS
// provides all the storage and sees none of the contents — and never even
// observes that a page fault happened.
//
//	go run ./examples/swap
package main

import (
	"fmt"
	"log"

	"repro/internal/kapi"
	"repro/internal/kasm"
	"repro/komodo"
)

func main() {
	sys, err := komodo.New(komodo.WithRefinementChecking())
	if err != nil {
		log.Fatal(err)
	}
	nimg, err := kasm.SwapDemo().Image()
	if err != nil {
		log.Fatal(err)
	}
	enc, err := sys.LoadEnclave(komodo.FromNWOSImage(nimg))
	if err != nil {
		log.Fatal(err)
	}
	spare := enc.SparePages()[0]

	// Phase 1: the enclave fills a page, checksums it, encrypts it out to
	// shared insecure memory, and unmaps it.
	res, err := enc.Run(0, spare)
	if err != nil {
		log.Fatal(err)
	}
	sum1 := res.Value
	fmt.Printf("evicted: checksum %#x; page returned to spare state\n", sum1)

	// The OS pokes at the swapped-out data: ciphertext.
	swapped, _ := enc.ReadShared(0, 0, 4)
	fmt.Printf("OS sees swap image: %08x %08x %08x %08x (not the 0x1234... fill)\n",
		swapped[0], swapped[1], swapped[2], swapped[3])

	// The OS can even reclaim the physical page and grant it back — the
	// enclave's state lives entirely in the encrypted swap image.
	drv := sys.OS().Driver()
	if e, _, _ := drv.SMC(kapi.SMCRemove, spare); e != kapi.ErrSuccess {
		log.Fatalf("reclaim: %v", e)
	}
	if e, _, _ := drv.SMC(kapi.SMCAllocSpare, enc.AddrspacePage(), spare); e != kapi.ErrSuccess {
		log.Fatalf("regrant: %v", e)
	}
	fmt.Println("OS reclaimed and re-granted the physical page in between")

	// Phase 2: the enclave touches the evicted address. The fault is
	// serviced in-enclave (MapData + decrypt + FaultReturn); the OS sees
	// one clean call.
	res, err = enc.Run(1, spare)
	if err != nil {
		log.Fatal(err)
	}
	if res.Faulted {
		log.Fatal("fault leaked to the OS")
	}
	fmt.Printf("touched: checksum %#x after transparent swap-in\n", res.Value)
	if res.Value == sum1 {
		fmt.Println("checksums match: the page round-tripped through untrusted storage intact,")
		fmt.Println("and the OS neither read it nor observed the page fault")
	} else {
		log.Fatal("checksum mismatch!")
	}
}
