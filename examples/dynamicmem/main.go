// Dynamic memory: the SGXv2-style feature set the paper added to Komodo in
// six person-months (§4 "Dynamic allocation", §7.3). The OS grants a spare
// page at any time; only the enclave decides — at runtime — whether it
// becomes a data page or a page table, and at which address. The OS can
// reclaim unused spares but learns nothing about consumed ones beyond the
// fact of consumption (the §6.2 declassified side channel, demonstrated
// below).
//
//	go run ./examples/dynamicmem
package main

import (
	"fmt"
	"log"

	"repro/internal/kapi"
	"repro/internal/kasm"
	"repro/komodo"
)

func main() {
	sys, err := komodo.New(komodo.WithRefinementChecking())
	if err != nil {
		log.Fatal(err)
	}

	// A guest that maps its spare page as data at runtime, writes through
	// the new mapping, and reads it back.
	g := kasm.DynAlloc()
	nimg, err := g.Image()
	if err != nil {
		log.Fatal(err)
	}
	img := komodo.Image{Entry: nimg.Entry, Spares: 2}
	for _, s := range nimg.Segments {
		img.Segments = append(img.Segments, komodo.Segment{VA: s.VA, Write: s.Write, Exec: s.Exec, Words: s.Words})
	}
	enc, err := sys.LoadEnclave(img)
	if err != nil {
		log.Fatal(err)
	}
	spares := enc.SparePages()
	fmt.Printf("enclave loaded with %d spare pages: %v\n", len(spares), spares)

	// Measurement is fixed before the spares are used: dynamic allocation
	// does not change the enclave's identity.
	before, _ := enc.Measurement()

	res, err := enc.Run(spares[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enclave mapped spare %d as data and round-tripped %#x through it\n", spares[0], res.Value)

	after, _ := enc.Measurement()
	if before != after {
		log.Fatal("dynamic allocation changed the measurement!")
	}
	fmt.Println("measurement unchanged: dynamic pages are not part of the identity")

	// The OS reclaims the *unused* spare...
	drv := sys.OS().Driver()
	e, _, err := drv.SMC(kapi.SMCRemove, spares[1])
	if err != nil {
		log.Fatal(err)
	}
	if e != kapi.ErrSuccess {
		log.Fatalf("reclaiming the unused spare failed: %v", e)
	}
	fmt.Printf("OS reclaimed unused spare %d\n", spares[1])

	// ...but reclaiming the consumed one fails: the only information the
	// design releases about what the enclave did with its spares.
	e, _, err = drv.SMC(kapi.SMCRemove, spares[0])
	if err != nil {
		log.Fatal(err)
	}
	if e == kapi.ErrSuccess {
		log.Fatal("OS reclaimed a page the enclave is using!")
	}
	fmt.Printf("OS cannot reclaim consumed spare %d (%v) — it may infer the page was used,\n", spares[0], e)
	fmt.Println("but not whether it became data or a page table (§4)")

	// Contrast with the static (SGXv1-style) profile, where none of this
	// exists:
	static, err := komodo.New(komodo.WithStaticProfile())
	if err != nil {
		log.Fatal(err)
	}
	_, err = static.LoadEnclave(img) // requests spares -> AllocSpare -> rejected
	if err == nil {
		log.Fatal("static profile accepted a dynamic-memory enclave")
	}
	fmt.Printf("SGXv1-style profile refuses spare allocation: %v\n", err)
	fmt.Println("(the paper implemented exactly this evolution in software, in 6 person-months —")
	fmt.Println(" SGX's own v2 waited years for silicon)")
}
