// Attestation: local attestation between two enclaves (§4 "Attestation").
// Enclave A attests to data of its choosing; the OS relays (data,
// A's measurement, MAC) to enclave B, which verifies it through the
// monitor's three-step Verify SVC. A forged MAC and a wrong measurement
// are both rejected — the OS cannot impersonate an enclave identity.
//
//	go run ./examples/attestation
package main

import (
	"fmt"
	"log"

	"repro/internal/kasm"
	"repro/komodo"
)

func load(sys *komodo.System, g kasm.Guest) (*komodo.Enclave, error) {
	nimg, err := g.Image()
	if err != nil {
		return nil, err
	}
	img := komodo.Image{Entry: nimg.Entry, Spares: nimg.Spares}
	for _, s := range nimg.Segments {
		img.Segments = append(img.Segments, komodo.Segment{VA: s.VA, Write: s.Write, Exec: s.Exec, Words: s.Words})
	}
	for _, sh := range nimg.Shared {
		img.Shared = append(img.Shared, komodo.SharedRegion{VA: sh.VA, Write: sh.Write, Pages: sh.Pages})
	}
	return sys.LoadEnclave(img)
}

func main() {
	sys, err := komodo.New()
	if err != nil {
		log.Fatal(err)
	}

	// Enclave A: attests over the data words 1..8 and publishes the MAC.
	attestor, err := load(sys, kasm.AttestToShared())
	if err != nil {
		log.Fatal(err)
	}
	res, err := attestor.Run()
	if err != nil || res.Value != 1 {
		log.Fatalf("attestor failed: %v %+v", err, res)
	}
	mac, err := attestor.ReadShared(0, 0, 8)
	if err != nil {
		log.Fatal(err)
	}
	measA, err := attestor.Measurement()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enclave A attested; measurement %08x…, MAC %08x…\n", measA[0], mac[0])

	// Enclave B: verifies what the OS hands it.
	verifier, err := load(sys, kasm.VerifyFromShared())
	if err != nil {
		log.Fatal(err)
	}
	verify := func(data [8]uint32, meas [8]uint32, mac []uint32) uint32 {
		payload := make([]uint32, 24)
		copy(payload[0:8], data[:])
		copy(payload[8:16], meas[:])
		copy(payload[16:24], mac)
		if err := verifier.WriteShared(0, 0, payload); err != nil {
			log.Fatal(err)
		}
		r, err := verifier.Run()
		if err != nil {
			log.Fatal(err)
		}
		return r.Value
	}

	data := [8]uint32{1, 2, 3, 4, 5, 6, 7, 8} // what AttestToShared attested
	if verify(data, measA, mac) != 1 {
		log.Fatal("genuine attestation rejected")
	}
	fmt.Println("enclave B verified A's attestation: genuine")

	// The OS forges the MAC: rejected.
	forged := append([]uint32(nil), mac...)
	forged[0] ^= 1
	if verify(data, measA, forged) != 0 {
		log.Fatal("forged MAC accepted!")
	}
	fmt.Println("forged MAC rejected")

	// The OS claims a different enclave identity: rejected.
	wrongMeas := measA
	wrongMeas[3] ^= 0xff
	if verify(data, wrongMeas, mac) != 0 {
		log.Fatal("wrong measurement accepted!")
	}
	fmt.Println("wrong claimed identity rejected")

	// The OS tampers with the attested data: rejected.
	data[7] = 99
	if verify(data, measA, mac) != 0 {
		log.Fatal("tampered data accepted!")
	}
	fmt.Println("tampered data rejected")
}
