// Remote attestation: the final piece of the paper's attestation story.
// The monitor provides only *local* attestation and "defers remote
// attestation to a trusted enclave (that we have yet to implement)" (§4) —
// here it is. A quoting enclave, provisioned with a key at "manufacture",
// converts local attestations into quotes that a verifier on another
// machine can check, trusting nothing the OS says:
//
//	app enclave ──Attest──▶ monitor MAC ──OS relays──▶ quoting enclave
//	   quoting enclave: Verify (genuine?) → quote = MAC_qk(meas‖data)
//	   ──OS "network"──▶ remote verifier: recompute with provisioned key
//
//	go run ./examples/remoteattest
package main

import (
	"fmt"
	"log"

	"repro/internal/kasm"
	"repro/komodo"
)

func load(sys *komodo.System, g kasm.Guest) *komodo.Enclave {
	nimg, err := g.Image()
	if err != nil {
		log.Fatal(err)
	}
	enc, err := sys.LoadEnclave(komodo.FromNWOSImage(nimg))
	if err != nil {
		log.Fatal(err)
	}
	return enc
}

func main() {
	sys, err := komodo.New(komodo.WithSeed(404))
	if err != nil {
		log.Fatal(err)
	}

	// Manufacture time: provision the quoting enclave and extract its
	// quote key over the manufacturer's channel (not available to the
	// deployed OS).
	qe := load(sys, kasm.QuotingEnclave())
	if res, err := qe.Run(0); err != nil || res.Value != 1 {
		log.Fatalf("provisioning failed: %v %+v", err, res)
	}
	db, err := sys.Monitor().DecodePageDB()
	if err != nil {
		log.Fatal(err)
	}
	quoteKey, ok := kasm.QuoteKeyFromDataPage(db, komodo.PageNr(qe.AddrspacePage()))
	if !ok {
		log.Fatal("quote key extraction failed")
	}
	fmt.Println("quoting enclave provisioned; verifier holds the quote key")

	// Deployment: an application enclave attests locally.
	app := load(sys, kasm.AttestToShared())
	if res, err := app.Run(); err != nil || res.Value != 1 {
		log.Fatalf("app attestation failed: %v %+v", err, res)
	}
	macWords, _ := app.ReadShared(0, 0, 8)
	appMeas, _ := app.Measurement()
	var data [8]uint32
	for i := range data {
		data[i] = uint32(i + 1) // what the app attested over
	}
	fmt.Printf("app enclave attested locally (measurement %08x…)\n", appMeas[0])

	// The untrusted OS relays the attestation to the quoting enclave.
	payload := make([]uint32, 24)
	copy(payload[kasm.QuoteInData:], data[:])
	copy(payload[kasm.QuoteInMeasure:], appMeas[:])
	copy(payload[kasm.QuoteInMAC:], macWords)
	if err := qe.WriteShared(0, 0, payload); err != nil {
		log.Fatal(err)
	}
	res, err := qe.Run(1)
	if err != nil || res.Value != 1 {
		log.Fatalf("quoting failed: %v %+v", err, res)
	}
	quoteWords, _ := qe.ReadShared(0, kasm.QuoteOut, 8)
	var quote [8]uint32
	copy(quote[:], quoteWords)
	fmt.Printf("quote issued: %08x%08x…\n", quote[0], quote[1])

	// The remote verifier — on another machine, trusting only its
	// provisioned key — accepts the quote.
	if !kasm.VerifyQuote(quoteKey, appMeas, data, quote) {
		log.Fatal("remote verifier rejected a genuine quote")
	}
	fmt.Println("remote verifier: quote GENUINE — the app enclave with that measurement")
	fmt.Println("really ran on this platform and attested that data")

	// The OS tries to quote a fabricated identity: the quoting enclave's
	// in-enclave Verify refuses, so there is nothing to send.
	forged := appMeas
	forged[0] ^= 0xff
	copy(payload[kasm.QuoteInMeasure:], forged[:])
	qe.WriteShared(0, 0, payload)
	res, err = qe.Run(1)
	if err != nil {
		log.Fatal(err)
	}
	if res.Value != 0 {
		log.Fatal("quoting enclave requoted a forgery!")
	}
	fmt.Println("forged identity: quoting enclave REFUSED — no quote exists to send")
}
