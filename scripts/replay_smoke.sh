#!/bin/sh
# Record/replay smoke test (docs/REPLAY.md): boot komodo-serve under the
# race detector with request recording on, drive load, then assert the
# deterministic-replay surface holds together end to end:
#   - the slowest retained request has a persisted .krec replay trace,
#   - komodo-mon -check replays it offline with zero divergence (registers,
#     memory digest, notary counter, cycle/class tallies all bit-identical),
#   - komodo-mon can navigate the replay and disassemble at the recorded PC,
#   - /v1/debug/replay re-verifies the trace in-process,
#   - /v1/debug/freeze parks a live worker mid-enclave and /v1/debug/mon
#     single-steps it, after which the worker keeps serving correctly,
#   - /metrics exports the komodo_replay_* and komodo_obs_* families,
# and finally require a clean SIGTERM drain.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true' EXIT

go build -race -o "$tmp/komodo-serve" ./cmd/komodo-serve
go build -o "$tmp/komodo-load" ./cmd/komodo-load
go build -o "$tmp/komodo-mon" ./cmd/komodo-mon
go build -o "$tmp/komodo-trace" ./cmd/komodo-trace

mkdir -p "$tmp/rec"
"$tmp/komodo-serve" -addr 127.0.0.1:0 -workers 2 -record-dir "$tmp/rec" \
    -addr-file "$tmp/addr" &
pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "replay-smoke: server did not come up" >&2
        exit 1
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "replay-smoke: server exited during boot" >&2
        exit 1
    fi
    sleep 0.2
done
addr=$(cat "$tmp/addr")
echo "replay-smoke: server at $addr (recording to $tmp/rec)"

# fetch METHOD URL FILE: request into FILE, fail on any non-200.
fetch() {
    if command -v curl >/dev/null 2>&1; then
        code=$(curl -s -X "$1" -o "$3" -w '%{http_code}' "$2")
        [ "$code" = "200" ] || { echo "replay-smoke: $1 $2 returned $code" >&2; cat "$3" >&2; exit 1; }
    else
        if [ "$1" = "POST" ]; then
            wget -q --post-data= -O "$3" "$2" || { echo "replay-smoke: $1 $2 failed" >&2; exit 1; }
        else
            wget -q -O "$3" "$2" || { echo "replay-smoke: $1 $2 failed" >&2; exit 1; }
        fi
    fi
}

# Recorded load: every request is recorded; the flight-retained ones
# persist their replay traces into the record dir.
"$tmp/komodo-load" -url "http://$addr" -clients 2 -requests 10 -endpoint notary
"$tmp/komodo-load" -url "http://$addr" -clients 2 -requests 6 -endpoint attest

# The slowest retained request must carry a persisted replay trace: the
# flight dump is slowest-first, so take its first "replay" link.
fetch GET "http://$addr/v1/debug/traces" "$tmp/traces.json"
krec=$(sed -n 's/.*"replay": *"\([^"]*\)".*/\1/p' "$tmp/traces.json" | head -1)
[ -n "$krec" ] && [ -f "$krec" ] || {
    echo "replay-smoke: no persisted replay trace in /v1/debug/traces" >&2
    exit 1
}
tid=$(basename "$krec" .krec)
echo "replay-smoke: slowest recorded request $tid -> $krec"

# ?min_ms= filters the dump (min_ms=0 keeps everything retained).
fetch GET "http://$addr/v1/debug/traces?min_ms=0" "$tmp/traces_all.json"
grep -q "$tid" "$tmp/traces_all.json" || {
    echo "replay-smoke: min_ms=0 filter dropped trace $tid" >&2
    exit 1
}
fetch GET "http://$addr/v1/debug/traces?min_ms=100000" "$tmp/traces_none.json"
if grep -q '"trace_id"' "$tmp/traces_none.json"; then
    echo "replay-smoke: min_ms=100000 filter kept traces" >&2
    exit 1
fi
echo "replay-smoke: /v1/debug/traces?min_ms= filter works"

# Offline replay must be bit-identical: registers, memory digest (which
# covers the in-enclave notary counter), cycle and class tallies are all
# asserted by the replayer; -check exits 1 on any divergence.
"$tmp/komodo-mon" -f "$krec" -check > "$tmp/check.txt"
grep -q "replay OK: zero divergence" "$tmp/check.txt" || {
    echo "replay-smoke: offline replay diverged" >&2
    cat "$tmp/check.txt" >&2
    exit 1
}
echo "replay-smoke: offline replay bit-identical"

# The monitor must navigate the replay: freeze at the start, disassemble
# at the recorded PC, single-step, then run the rest out clean.
"$tmp/komodo-mon" -f "$krec" -cmd "status; regs; dis; step 3; until smc; finish" > "$tmp/mon.txt"
grep -q "=>" "$tmp/mon.txt" || {
    echo "replay-smoke: komodo-mon did not disassemble at the recorded PC" >&2
    cat "$tmp/mon.txt" >&2
    exit 1
}
grep -q "replay OK: zero divergence" "$tmp/mon.txt" || {
    echo "replay-smoke: navigated replay did not finish clean" >&2
    cat "$tmp/mon.txt" >&2
    exit 1
}
echo "replay-smoke: komodo-mon navigates and disassembles the replay"

# komodo-trace correlates the timeline with replay cycle offsets.
"$tmp/komodo-trace" -f "$tmp/traces.json" -id "$tid" -replay "$krec" > "$tmp/timeline.txt"
grep -q "replay@cycle=" "$tmp/timeline.txt" || {
    echo "replay-smoke: timeline missing replay cycle offsets" >&2
    cat "$tmp/timeline.txt" >&2
    exit 1
}
echo "replay-smoke: timeline spans carry replay cycle offsets"

# The server re-verifies the trace in-process.
fetch POST "http://$addr/v1/debug/replay?id=$tid" "$tmp/replay.json"
grep -q '"ok": *true' "$tmp/replay.json" || {
    echo "replay-smoke: /v1/debug/replay reported divergence" >&2
    cat "$tmp/replay.json" >&2
    exit 1
}
echo "replay-smoke: /v1/debug/replay verified in-process"

# Freeze-the-world on a live worker: run load in the background and catch
# a worker mid-enclave, single-step it over the monitor, then resume.
"$tmp/komodo-load" -url "http://$addr" -clients 2 -requests 400 -endpoint notary > "$tmp/bgload.txt" 2>&1 &
loadpid=$!
frozen=""
for attempt in 1 2 3 4 5; do
    for wkr in 0 1; do
        if curl -s -X POST -o "$tmp/freeze.json" -w '%{http_code}' \
            "http://$addr/v1/debug/freeze?worker=$wkr&timeout_ms=2000" 2>/dev/null | grep -q 200; then
            frozen="$wkr"
            break 2
        fi
    done
done
[ -n "$frozen" ] || {
    echo "replay-smoke: could not freeze a live worker under load" >&2
    cat "$tmp/freeze.json" >&2 || true
    exit 1
}
grep -q '"frozen": *true' "$tmp/freeze.json"
echo "replay-smoke: worker $frozen frozen mid-enclave: $(cat "$tmp/freeze.json")"

"$tmp/komodo-mon" -connect "http://$addr" -worker "$frozen" \
    -cmd "regs; dis; step 2; over" > "$tmp/live.txt"
grep -q "=>" "$tmp/live.txt" || {
    echo "replay-smoke: live monitor did not disassemble" >&2
    cat "$tmp/live.txt" >&2
    exit 1
}
fetch POST "http://$addr/v1/debug/freeze?worker=$frozen&state=off" "$tmp/resume.json"
echo "replay-smoke: live single-step + resume on worker $frozen"

# The frozen-then-resumed worker must not have perturbed served results:
# the background load has to finish with every request verified.
wait "$loadpid" || {
    echo "replay-smoke: load failed after freeze/resume" >&2
    cat "$tmp/bgload.txt" >&2
    exit 1
}
echo "replay-smoke: served results unperturbed by the debug episode"

# Replay counters and obs self-metrics flow to /metrics.
fetch GET "http://$addr/metrics" "$tmp/metrics.txt"
for fam in \
    komodo_replay_traces_total \
    komodo_obs_flight_occupancy \
    komodo_obs_sink_dropped_total; do
    grep -q "^$fam" "$tmp/metrics.txt" || {
        echo "replay-smoke: /metrics missing family $fam" >&2
        exit 1
    }
done
grep 'komodo_replay_traces_total{event="recorded"}' "$tmp/metrics.txt" | grep -qv ' 0$' || {
    echo "replay-smoke: komodo_replay_traces_total{recorded} is zero" >&2
    exit 1
}
echo "replay-smoke: replay + obs metric families exported"

kill -TERM "$pid"
wait "$pid"
status=$?
pid=
if [ "$status" -ne 0 ]; then
    echo "replay-smoke: server exited $status after SIGTERM" >&2
    exit 1
fi
echo "replay-smoke: OK (record, bit-identical replay, monitor, live freeze, metrics, clean drain)"
