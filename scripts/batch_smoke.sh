#!/bin/sh
# Batch smoke test: boot a race-instrumented komodo-serve with batched
# Merkle signing and tenant admission control, drive a mixed-tenant load,
# and hold the docs/BATCHING.md contract end to end: every batched
# receipt verifies offline (inclusion proof + root/counter binding),
# admission rejections are classified and carry Retry-After, queue
# pressure sheds the lowest tier, and the enclave counter stays strictly
# monotonic with zero duplicated ticks across all batches.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; [ -n "${pid_srv:-}" ] && kill "$pid_srv" 2>/dev/null || true' EXIT

go build -race -o "$tmp/komodo-serve" ./cmd/komodo-serve
go build -o "$tmp/komodo-load" ./cmd/komodo-load
go build -o "$tmp/komodo-verify" ./cmd/komodo-verify

# json_field <field> <file>: first integer value of "field" in a JSON file.
json_field() {
    grep -o "\"$1\": *[0-9]*" "$2" | grep -o '[0-9]*$' | head -n 1
}

# Tiers: gold unlimited; free rate-limited hard enough that the mix
# produces 429 rate_limit; trial sheds as soon as the batch queue carries
# any real backlog (shed_at 0.1 of the aggregator queue).
"$tmp/komodo-serve" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -workers 1 -seed 42 \
    -batch 8 -batch-window 2ms \
    -tiers 'gold:0:0:0;free:300:40:0:0.95;trial:100:20:0:0.1' \
    -tenants 'tok-g=gold,tok-f=free,tok-t=trial' -default-tier free \
    >"$tmp/serve.log" 2>&1 &
pid_srv=$!
i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    [ "$i" -gt 150 ] || { sleep 0.2; continue; }
    echo "batch-smoke: server did not come up" >&2
    exit 1
done
url="http://$(cat "$tmp/addr")"
echo "batch-smoke: server at $url (race-built, K=8, 3 tiers)"

# Phase 1: one receipt end to end through the CLI verifier. The saved
# response must verify offline (leaf binding included) and must FAIL
# against a different document.
head -c 300 /dev/urandom >"$tmp/doc.bin"
curl -sf --data-binary @"$tmp/doc.bin" -H 'X-Komodo-Tenant: tok-g' \
    "$url/v1/notary/sign" >"$tmp/receipt.json"
"$tmp/komodo-verify" -receipt "$tmp/receipt.json" -doc "$tmp/doc.bin" \
    || { echo "batch-smoke: saved receipt did not verify offline" >&2; exit 1; }
head -c 300 /dev/urandom >"$tmp/other.bin"
if "$tmp/komodo-verify" -receipt "$tmp/receipt.json" -doc "$tmp/other.bin" 2>/dev/null; then
    echo "batch-smoke: FAIL: receipt verified against a foreign document" >&2
    exit 1
fi
echo "batch-smoke: offline receipt verification OK (and fails closed on a foreign doc)"

# Phase 2: mixed-tenant load. -verify checks every batched receipt's
# inclusion proof offline in the client; the streamBook rejects any
# duplicated (counter, root, leaf) tick.
"$tmp/komodo-load" -url "$url" -endpoint notary -clients 32 -duration 6s -verify \
    -tenant-mix 'tok-g:3,tok-f:4,tok-t:3' -json >"$tmp/run.json"
ok=$(json_field ok "$tmp/run.json")
receipts=$(json_field receipts_verified "$tmp/run.json")
dups=$(json_field counter_dups "$tmp/run.json")
retry_missing=$(json_field retry_after_missing "$tmp/run.json")
rate=$(json_field rate_limit "$tmp/run.json"); rate=${rate:-0}
shed=$(json_field shed "$tmp/run.json"); shed=${shed:-0}

[ "$ok" -ge 100 ] || { echo "batch-smoke: only $ok signs succeeded" >&2; exit 1; }
[ "$receipts" = "$ok" ] || { echo "batch-smoke: $receipts receipts verified for $ok signs" >&2; exit 1; }
[ "$dups" = 0 ] || { echo "batch-smoke: $dups duplicated counter ticks" >&2; exit 1; }
[ "$retry_missing" = 0 ] || { echo "batch-smoke: $retry_missing rejections without Retry-After" >&2; exit 1; }
[ "$rate" -ge 1 ] || { echo "batch-smoke: no rate_limit rejections in the mix" >&2; exit 1; }
[ "$shed" -ge 1 ] || { echo "batch-smoke: no shed rejections under load" >&2; exit 1; }
echo "batch-smoke: $ok signs, $receipts receipts verified, rejects rate_limit=$rate shed=$shed, 0 dups, Retry-After on every rejection"

# Phase 3: counters are strictly monotonic across the whole run — with
# K-sized batches the tick count must be well under the sign count.
cmax=$(json_field counter_max "$tmp/run.json")
[ "$cmax" -ge 1 ] || { echo "batch-smoke: no counters observed" >&2; exit 1; }
[ "$cmax" -lt "$ok" ] || { echo "batch-smoke: $cmax ticks for $ok signs — batching not amortising" >&2; exit 1; }
echo "batch-smoke: counter ticks $cmax for $ok signed requests (amortised)"

# Phase 4: stats + metrics surfaces carry the batch and tenant ledgers.
curl -sf "$url/v1/stats" >"$tmp/stats.json"
grep -q '"batch"' "$tmp/stats.json" || { echo "batch-smoke: /v1/stats missing batch section" >&2; exit 1; }
grep -q '"tenants"' "$tmp/stats.json" || { echo "batch-smoke: /v1/stats missing tenants section" >&2; exit 1; }
curl -sf "$url/metrics" >"$tmp/metrics.txt"
grep -q '^komodo_batch_signed_total' "$tmp/metrics.txt" || { echo "batch-smoke: /metrics missing komodo_batch_*" >&2; exit 1; }
grep -q '^komodo_tenant_requests_total' "$tmp/metrics.txt" || { echo "batch-smoke: /metrics missing komodo_tenant_*" >&2; exit 1; }

kill -TERM "$pid_srv"
wait "$pid_srv" || { echo "batch-smoke: server exited uncleanly after SIGTERM (race detector?)" >&2; exit 1; }
pid_srv=
echo "batch-smoke: OK (receipts verify offline, rejections classified with Retry-After, sheds observed, counters monotonic)"
