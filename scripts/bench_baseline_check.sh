#!/bin/sh
# Baseline drift guard: every BENCH_*.json a reader is pointed at from
# docs/PERFORMANCE.md or EXPERIMENTS.md must actually exist in the tree.
# (PR 9 referenced a baseline it never shipped; this keeps docs and
# committed baselines from drifting apart again.)
set -eu

cd "$(dirname "$0")/.."

missing=0
refs=$(grep -ho 'BENCH_[0-9]*\.json' docs/PERFORMANCE.md EXPERIMENTS.md 2>/dev/null | sort -u)
[ -n "$refs" ] || { echo "bench-baseline-check: no BENCH_*.json references found" >&2; exit 1; }
for f in $refs; do
    if [ -f "$f" ]; then
        echo "bench-baseline-check: $f referenced and present"
    else
        echo "bench-baseline-check: FAIL: $f is referenced from the docs but missing from the tree" >&2
        missing=1
    fi
done
exit "$missing"
