#!/bin/sh
# Adaptive write-path smoke test: boot a race-instrumented komodo-serve
# with adaptive batch sizing, cross-request dedup, and group-commit
# durability, drive a Zipf-skewed load, and hold the docs/BATCHING.md
# §Adaptive write path contract end to end: every receipt verifies
# offline, K moves up from -batch-min under pressure, identical
# documents coalesce (dedup_total > 0), the WAL fsync rate stays far
# under the signed-request rate, and a SIGTERM + restart on the same
# state dir keeps counters strictly monotonic.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; [ -n "${pid_srv:-}" ] && kill "$pid_srv" 2>/dev/null || true' EXIT

go build -race -o "$tmp/komodo-serve" ./cmd/komodo-serve
go build -o "$tmp/komodo-load" ./cmd/komodo-load
go build -o "$tmp/komodo-verify" ./cmd/komodo-verify

# json_field <field> <file>: first integer value of "field" in a JSON file.
json_field() {
    grep -o "\"$1\": *[0-9]*" "$2" | grep -o '[0-9]*$' | head -n 1
}

start_server() {
    rm -f "$tmp/addr"
    "$tmp/komodo-serve" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -workers 1 -seed 42 \
        -state-dir "$tmp/state" -checkpoint-every 1 \
        -batch 16 -batch-min 2 -batch-window 25ms -batch-dedup -group-commit \
        >>"$tmp/serve.log" 2>&1 &
    pid_srv=$!
    i=0
    while [ ! -s "$tmp/addr" ]; do
        i=$((i + 1))
        [ "$i" -gt 150 ] || { sleep 0.2; continue; }
        echo "writepath-smoke: server did not come up" >&2
        exit 1
    done
    url="http://$(cat "$tmp/addr")"
}

start_server
echo "writepath-smoke: server at $url (race-built, 1 worker, adaptive K=2..16, dedup, group commit)"

# Phase 1: one receipt end to end through the CLI verifier, and it must
# fail closed against a foreign document.
head -c 300 /dev/urandom >"$tmp/doc.bin"
curl -sf --data-binary @"$tmp/doc.bin" "$url/v1/notary/sign" >"$tmp/receipt.json"
"$tmp/komodo-verify" -receipt "$tmp/receipt.json" -doc "$tmp/doc.bin" \
    || { echo "writepath-smoke: saved receipt did not verify offline" >&2; exit 1; }
head -c 300 /dev/urandom >"$tmp/other.bin"
if "$tmp/komodo-verify" -receipt "$tmp/receipt.json" -doc "$tmp/other.bin" 2>/dev/null; then
    echo "writepath-smoke: FAIL: receipt verified against a foreign document" >&2
    exit 1
fi
echo "writepath-smoke: offline receipt verification OK (fails closed on a foreign doc)"

# Phase 2: skewed load with in-client receipt verification. Sample
# /v1/stats mid-load so the adaptive K reading reflects live pressure,
# not the post-drain taper.
"$tmp/komodo-load" -url "$url" -endpoint notary -clients 48 -duration 6s \
    -verify -zipf 1.2 -zipf-docs 64 -respect-retry-after -json >"$tmp/run.json" &
pid_load=$!
sleep 4
curl -sf "$url/v1/stats" >"$tmp/stats_live.json"
wait "$pid_load" || { echo "writepath-smoke: load run failed" >&2; exit 1; }
curl -sf "$url/v1/stats" >"$tmp/stats.json"

ok=$(json_field ok "$tmp/run.json")
receipts=$(json_field receipts_verified "$tmp/run.json")
dups=$(json_field counter_dups "$tmp/run.json")
coalesced=$(json_field coalesced_receipts "$tmp/run.json"); coalesced=${coalesced:-0}
max1=$(json_field counter_max "$tmp/run.json")

[ "$ok" -ge 100 ] || { echo "writepath-smoke: only $ok signs succeeded" >&2; exit 1; }
[ "$receipts" = "$ok" ] || { echo "writepath-smoke: $receipts receipts verified for $ok signs" >&2; exit 1; }
[ "$dups" = 0 ] || { echo "writepath-smoke: $dups duplicated counter ticks" >&2; exit 1; }
[ "$coalesced" -ge 1 ] || { echo "writepath-smoke: no coalesced receipts under Zipf skew" >&2; exit 1; }
echo "writepath-smoke: $ok signs, $receipts receipts verified ($coalesced rode a shared leaf), 0 dups"

# Phase 3: the adaptive write path moved. K must have grown above
# -batch-min under live pressure, dedup must have coalesced, and the
# fsync rate must be far below the signed-request rate (batching plus
# group commit: several signs per WAL sync).
k_live=$(json_field k_current "$tmp/stats_live.json")
dedup=$(json_field dedup_total "$tmp/stats.json")
appends=$(json_field appends "$tmp/stats.json")
fsyncs=$(json_field fsyncs "$tmp/stats.json")
batches=$(json_field batches "$tmp/stats.json")

[ "$k_live" -gt 2 ] || { echo "writepath-smoke: K=$k_live never moved above -batch-min under load" >&2; exit 1; }
[ "$dedup" -ge 1 ] || { echo "writepath-smoke: dedup_total=$dedup with identical docs in flight" >&2; exit 1; }
[ "$fsyncs" -le "$appends" ] || { echo "writepath-smoke: fsyncs=$fsyncs > appends=$appends" >&2; exit 1; }
[ $((fsyncs * 4)) -le "$ok" ] || { echo "writepath-smoke: fsyncs=$fsyncs for $ok signs — write path not amortising" >&2; exit 1; }
echo "writepath-smoke: K=$k_live (min 2, max 16) under load, dedup_total=$dedup, fsyncs=$fsyncs for $ok signs across $batches batches"

# Phase 4: the metric surface carries the new families.
curl -sf "$url/metrics" >"$tmp/metrics.txt"
for fam in komodo_batch_k_current komodo_batch_dedup_total komodo_store_fsyncs_total komodo_store_group_size; do
    grep -q "^$fam" "$tmp/metrics.txt" || { echo "writepath-smoke: /metrics missing $fam" >&2; exit 1; }
done
echo "writepath-smoke: /metrics exposes k_current, dedup_total, fsyncs_total, group_size"

# Phase 5: SIGTERM, restart on the same state dir, counters strictly
# monotonic — group commit must not have acked anything it didn't sync.
kill -TERM "$pid_srv"
wait "$pid_srv" || { echo "writepath-smoke: server exited uncleanly after SIGTERM (race detector?)" >&2; exit 1; }
pid_srv=
start_server
"$tmp/komodo-load" -url "$url" -endpoint notary -clients 1 -requests 5 -verify -json >"$tmp/run2.json"
min2=$(json_field counter_min "$tmp/run2.json")
dups2=$(json_field counter_dups "$tmp/run2.json")
[ -n "$min2" ] || { echo "writepath-smoke: no counters after restart" >&2; exit 1; }
[ "$dups2" = 0 ] || { echo "writepath-smoke: duplicated ticks after restart" >&2; exit 1; }
if [ "$min2" -le "$max1" ]; then
    echo "writepath-smoke: FAIL: counter $min2 after restart <= $max1 before (replayed a counter)" >&2
    exit 1
fi
echo "writepath-smoke: counters resume at $min2, strictly past $max1"

kill -TERM "$pid_srv"
wait "$pid_srv" || { echo "writepath-smoke: server exited uncleanly after SIGTERM" >&2; exit 1; }
pid_srv=
echo "writepath-smoke: OK (adaptive K, dedup, group commit, offline receipts, monotonic counters across restart)"
