#!/bin/sh
# Checkpoint smoke test: boot komodo-serve with a durable state dir, sign
# documents, pull + offline-verify a sealed checkpoint, kill the server,
# restart it on the same state dir, sign again, and require the notary
# counter to continue strictly past its last pre-restart value — the
# durability contract of docs/SEALING.md, end to end through real
# processes and a real kill.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true' EXIT

go build -o "$tmp/komodo-serve" ./cmd/komodo-serve
go build -o "$tmp/komodo-load" ./cmd/komodo-load
go build -o "$tmp/komodo-ckpt" ./cmd/komodo-ckpt

start_server() {
    rm -f "$tmp/addr"
    "$tmp/komodo-serve" -addr 127.0.0.1:0 -workers 1 -seed 42 \
        -state-dir "$tmp/state" -addr-file "$tmp/addr" &
    pid=$!
    i=0
    while [ ! -s "$tmp/addr" ]; do
        i=$((i + 1))
        if [ "$i" -gt 150 ]; then
            echo "ckpt-smoke: server did not come up" >&2
            exit 1
        fi
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "ckpt-smoke: server exited during boot" >&2
            exit 1
        fi
        sleep 0.2
    done
    addr=$(cat "$tmp/addr")
}

# counter_field <field> <load-json-file>
counter_field() {
    grep -o "\"$1\": *[0-9]*" "$2" | grep -o '[0-9]*$' | head -n 1
}

start_server
echo "ckpt-smoke: server at $addr (state dir $tmp/state)"

"$tmp/komodo-load" -url "http://$addr" -endpoint notary -clients 1 -requests 5 -json >"$tmp/run1.json"
max1=$(counter_field counter_max "$tmp/run1.json")
[ -n "$max1" ] || { echo "ckpt-smoke: no counters in first run" >&2; exit 1; }
echo "ckpt-smoke: signed 5 documents, last counter $max1"

# A pulled checkpoint must verify offline under the serving seed and be
# rejected under any other (measurement-bound sealing key).
"$tmp/komodo-ckpt" pull -url "http://$addr" -out "$tmp/ckpt.json"
"$tmp/komodo-ckpt" inspect "$tmp/ckpt.json"
"$tmp/komodo-ckpt" verify -seed 42 "$tmp/ckpt.json"
if "$tmp/komodo-ckpt" verify -seed 43 "$tmp/ckpt.json" 2>/dev/null; then
    echo "ckpt-smoke: checkpoint restored under a foreign seed" >&2
    exit 1
fi

kill -TERM "$pid"
wait "$pid" || { echo "ckpt-smoke: server exited uncleanly after SIGTERM" >&2; exit 1; }
pid=
echo "ckpt-smoke: server killed, restarting on the same state dir"

start_server
"$tmp/komodo-load" -url "http://$addr" -endpoint notary -clients 1 -requests 3 -json >"$tmp/run2.json"
min2=$(counter_field counter_min "$tmp/run2.json")
max2=$(counter_field counter_max "$tmp/run2.json")
[ -n "$min2" ] || { echo "ckpt-smoke: no counters after restart" >&2; exit 1; }

if [ "$min2" -le "$max1" ]; then
    echo "ckpt-smoke: FAIL: counter $min2 after restart <= $max1 before (replayed a counter)" >&2
    exit 1
fi
echo "ckpt-smoke: counters $min2..$max2 after restart, strictly past $max1"

kill -TERM "$pid"
wait "$pid" || { echo "ckpt-smoke: server exited uncleanly after SIGTERM" >&2; exit 1; }
pid=
echo "ckpt-smoke: OK (durable counter monotonic across restart)"
