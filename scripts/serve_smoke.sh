#!/bin/sh
# Serve smoke test: boot komodo-serve on a random port, drive /v1/attest
# with fresh nonces, verify every quote client-side (komodo-load -verify
# checks the nonce echo, the nonce→data derivation, and kasm.VerifyQuote
# against the key from /v1/quotekey), then shut down gracefully via
# SIGTERM and require a clean exit.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true' EXIT

go build -o "$tmp/komodo-serve" ./cmd/komodo-serve
go build -o "$tmp/komodo-load" ./cmd/komodo-load

"$tmp/komodo-serve" -addr 127.0.0.1:0 -workers 2 -addr-file "$tmp/addr" &
pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 150 ]; then
        echo "serve-smoke: server did not come up" >&2
        exit 1
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve-smoke: server exited during boot" >&2
        exit 1
    fi
    sleep 0.2
done
addr=$(cat "$tmp/addr")
echo "serve-smoke: server at $addr"

"$tmp/komodo-load" -url "http://$addr" -clients 2 -requests 10 -verify

# One /metrics scrape must answer 200 (content checks live in obs_smoke.sh).
if command -v curl >/dev/null 2>&1; then
    code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/metrics")
else
    code=$(wget -q -S -O /dev/null "http://$addr/metrics" 2>&1 | awk '/^  HTTP\//{print $2}' | tail -1)
fi
if [ "$code" != "200" ]; then
    echo "serve-smoke: GET /metrics returned ${code:-nothing}" >&2
    exit 1
fi
echo "serve-smoke: /metrics scrape OK"

kill -TERM "$pid"
wait "$pid"
status=$?
pid=
if [ "$status" -ne 0 ]; then
    echo "serve-smoke: server exited $status after SIGTERM" >&2
    exit 1
fi
echo "serve-smoke: OK (10 verified quotes, clean drain)"
