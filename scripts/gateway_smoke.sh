#!/bin/sh
# Gateway smoke test: boot two komodo-serve backends behind komodo-gateway
# (all binaries race-instrumented), verify quotes fetched through the
# gateway, drive sharded notary load, kill one backend mid-load and require
# zero non-retryable client errors and zero duplicated counters across the
# failover, then restart the dead backend, live-migrate the survivor's
# sealed notary state onto it, and require the migrated counter stream to
# continue strictly past the pulled checkpoint — the docs/GATEWAY.md
# contract, end to end through real processes and a real kill.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; for p in "${pid_a:-}" "${pid_b:-}" "${pid_gw:-}"; do [ -n "$p" ] && kill "$p" 2>/dev/null || true; done' EXIT

go build -race -o "$tmp/komodo-serve" ./cmd/komodo-serve
go build -race -o "$tmp/komodo-gateway" ./cmd/komodo-gateway
go build -o "$tmp/komodo-load" ./cmd/komodo-load

wait_file() { # wait_file <file> <what>
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        [ "$i" -gt 150 ] || { sleep 0.2; continue; }
        echo "gateway-smoke: $2 did not come up" >&2
        exit 1
    done
}

# json_field <field> <file>: first integer value of "field" in a JSON file
# (works on both indented and compact encodings).
json_field() {
    grep -o "\"$1\": *[0-9]*" "$2" | grep -o '[0-9]*$' | head -n 1
}

start_backend() { # start_backend <name> [addr]  (addr: rebind a fixed address on restart)
    rm -f "$tmp/addr_$1"
    "$tmp/komodo-serve" -addr "${2:-127.0.0.1:0}" -workers 1 -seed 42 \
        -state-dir "$tmp/state_$1" -addr-file "$tmp/addr_$1" >>"$tmp/log_$1.txt" 2>&1 &
    eval "pid_$1=$!"
    wait_file "$tmp/addr_$1" "backend $1"
}

start_backend a
start_backend b
addr_a=$(cat "$tmp/addr_a")
addr_b=$(cat "$tmp/addr_b")
echo "gateway-smoke: backends a=$addr_a b=$addr_b"

rm -f "$tmp/addr_gw"
"$tmp/komodo-gateway" -addr 127.0.0.1:0 -addr-file "$tmp/addr_gw" \
    -backends "a=$addr_a,b=$addr_b" \
    -probe-interval 200ms -down-after 2 -up-after 2 >"$tmp/log_gw.txt" 2>&1 &
pid_gw=$!
wait_file "$tmp/addr_gw" "gateway"
gw="http://$(cat "$tmp/addr_gw")"
echo "gateway-smoke: gateway at $gw"

# Phase 1: attestation through the gateway. -verify recomputes the
# nonce->data derivation and checks every quote against the quote key —
# itself fetched through the gateway — so this proves the proxy preserves
# nonce freshness and adds nothing the verifier must trust.
"$tmp/komodo-load" -targets "$gw" -endpoint attest -clients 2 -requests 8 -verify -json >"$tmp/attest.json"
verified=$(json_field verified "$tmp/attest.json")
[ "$verified" -ge 8 ] || { echo "gateway-smoke: only $verified quotes verified via gateway" >&2; exit 1; }
echo "gateway-smoke: $verified quotes verified through the gateway"

# Phase 2: sharded notary load across both backends.
"$tmp/komodo-load" -targets "$gw" -endpoint notary -clients 4 -shards 4 -requests 40 -json >"$tmp/run1.json"
dups1=$(json_field counter_dups "$tmp/run1.json")
[ "$dups1" = 0 ] || { echo "gateway-smoke: $dups1 duplicated counters in steady state" >&2; exit 1; }
echo "gateway-smoke: sharded signing OK (counters $(json_field counter_min "$tmp/run1.json")..$(json_field counter_max "$tmp/run1.json"), 0 dups)"

# Phase 3: kill backend a mid-load. The gateway must fail its shards over
# to b with zero non-retryable client errors and no counter reuse.
"$tmp/komodo-load" -targets "$gw" -endpoint notary -clients 4 -shards 4 -duration 6s -json >"$tmp/run2.json" &
load_pid=$!
sleep 1.5
kill -TERM "$pid_a"
wait "$pid_a" || { echo "gateway-smoke: backend a exited uncleanly after SIGTERM" >&2; exit 1; }
pid_a=
echo "gateway-smoke: backend a killed mid-load"
wait "$load_pid" || { echo "gateway-smoke: load run failed across the kill" >&2; exit 1; }
errors=$(json_field errors "$tmp/run2.json")
dups2=$(json_field counter_dups "$tmp/run2.json")
[ "$errors" = 0 ] || { echo "gateway-smoke: $errors non-retryable client errors across failover" >&2; exit 1; }
[ "$dups2" = 0 ] || { echo "gateway-smoke: $dups2 duplicated counters across failover" >&2; exit 1; }
echo "gateway-smoke: failover clean (0 errors, 0 dups)"

curl -sf "$gw/metrics" >"$tmp/metrics.txt"
failovers=$(grep '^komodo_gateway_failovers_total' "$tmp/metrics.txt" | grep -o '[0-9.]*$')
[ "${failovers%.*}" -ge 1 ] || { echo "gateway-smoke: failovers_total is $failovers, expected >= 1" >&2; exit 1; }
grep -q 'komodo_gateway_backend_up{backend="a"} 0' "$tmp/metrics.txt" \
    || { echo "gateway-smoke: dead backend a not marked down in /metrics" >&2; exit 1; }

# Phase 4: restart a on the SAME address (the gateway's backend URL is
# fixed; same state dir, so its own counters recover), wait for the
# prober to promote it, then live-migrate b's shards + sealed notary
# state onto a.
start_backend a "$addr_a"
i=0
until [ "$(curl -sf "$gw/v1/admin/backends" | grep -o '"state":"up"' | wc -l)" -eq 2 ]; do
    i=$((i + 1))
    [ "$i" -le 50 ] || { echo "gateway-smoke: backend a never promoted after restart" >&2; exit 1; }
    sleep 0.2
done
echo "gateway-smoke: backend a restarted and promoted"

curl -sf -X POST "$gw/v1/admin/migrate?from=b&to=a&drain=1" >"$tmp/migrate.json"
pulled=$(json_field counter "$tmp/migrate.json")
[ -n "$pulled" ] && [ "$pulled" -gt 0 ] || { echo "gateway-smoke: migration pulled no counter: $(cat "$tmp/migrate.json")" >&2; exit 1; }
echo "gateway-smoke: migrated b -> a at counter $pulled"

# Phase 5: keep signing. Every shard now lands on a, whose restored
# notary must continue b's stream strictly past the pulled checkpoint.
"$tmp/komodo-load" -targets "$gw" -endpoint notary -clients 4 -shards 4 -requests 20 -json >"$tmp/run3.json"
min3=$(json_field counter_min "$tmp/run3.json")
dups3=$(json_field counter_dups "$tmp/run3.json")
[ "$dups3" = 0 ] || { echo "gateway-smoke: $dups3 duplicated counters after migration" >&2; exit 1; }
[ "$min3" -gt "$pulled" ] || { echo "gateway-smoke: FAIL: counter $min3 after migration <= pulled $pulled (lineage spliced)" >&2; exit 1; }
echo "gateway-smoke: post-migration counters $min3..$(json_field counter_max "$tmp/run3.json"), strictly past $pulled, 0 dups"

# Phase 6: the fleet view exposes per-backend rejection counters and the
# merged telemetry, and the migration shows up in the gateway metrics.
curl -sf "$gw/v1/stats" >"$tmp/stats.json"
grep -q '"rejected_by_backend"' "$tmp/stats.json" || { echo "gateway-smoke: fleet stats missing rejected_by_backend" >&2; exit 1; }
grep -q '"telemetry"' "$tmp/stats.json" || { echo "gateway-smoke: fleet stats missing merged telemetry" >&2; exit 1; }
curl -sf "$gw/metrics" | grep -q 'komodo_gateway_migrations_total 1' \
    || { echo "gateway-smoke: migrations_total != 1 in /metrics" >&2; exit 1; }

kill -TERM "$pid_gw"
wait "$pid_gw" || { echo "gateway-smoke: gateway exited uncleanly after SIGTERM" >&2; exit 1; }
pid_gw=
kill -TERM "$pid_a" "$pid_b"
wait "$pid_a" "$pid_b" || { echo "gateway-smoke: a backend exited uncleanly at shutdown" >&2; exit 1; }
pid_a=
pid_b=
echo "gateway-smoke: OK (failover clean, migration monotonic, fleet stats merged)"
