#!/bin/sh
# Observability smoke test: boot komodo-serve, drive traced requests with
# a known W3C traceparent, then assert the whole observability surface
# holds together end to end:
#   - the trace id shows up in the /v1/debug/traces flight-recorder dump,
#   - komodo-trace renders it as a timeline with serving-phase spans,
#   - /metrics serves every expected Prometheus family,
# and finally require a clean SIGTERM drain.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true' EXIT

TRACEPARENT="00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
TRACE_ID="0af7651916cd43dd8448eb211c80319c"

go build -o "$tmp/komodo-serve" ./cmd/komodo-serve
go build -o "$tmp/komodo-load" ./cmd/komodo-load
go build -o "$tmp/komodo-trace" ./cmd/komodo-trace

"$tmp/komodo-serve" -addr 127.0.0.1:0 -workers 2 -addr-file "$tmp/addr" &
pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 150 ]; then
        echo "obs-smoke: server did not come up" >&2
        exit 1
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "obs-smoke: server exited during boot" >&2
        exit 1
    fi
    sleep 0.2
done
addr=$(cat "$tmp/addr")
echo "obs-smoke: server at $addr"

# fetch URL FILE: GET into FILE, fail on any non-200.
fetch() {
    if command -v curl >/dev/null 2>&1; then
        code=$(curl -s -o "$2" -w '%{http_code}' "$1")
        [ "$code" = "200" ] || { echo "obs-smoke: GET $1 returned $code" >&2; exit 1; }
    else
        wget -q -O "$2" "$1" || { echo "obs-smoke: GET $1 failed" >&2; exit 1; }
    fi
}

# Traced traffic: notary signs carry the known traceparent.
"$tmp/komodo-load" -url "http://$addr" -clients 2 -requests 8 \
    -endpoint notary -traceparent "$TRACEPARENT"

# The known trace id must be retained in the flight recorder.
fetch "http://$addr/v1/debug/traces" "$tmp/traces.json"
grep -q "$TRACE_ID" "$tmp/traces.json" || {
    echo "obs-smoke: trace $TRACE_ID not in /v1/debug/traces" >&2
    exit 1
}
echo "obs-smoke: trace $TRACE_ID retained"

# komodo-trace must render it as a timeline with the serving phases.
"$tmp/komodo-trace" -f "$tmp/traces.json" -id "$TRACE_ID" -n 1 > "$tmp/timeline.txt"
for span in queue acquire execute restore "smc:"; do
    grep -q "$span" "$tmp/timeline.txt" || {
        echo "obs-smoke: timeline missing $span span" >&2
        cat "$tmp/timeline.txt" >&2
        exit 1
    }
done
echo "obs-smoke: timeline renders with all serving phases"

# /metrics must parse as text exposition: one sample per expected family.
fetch "http://$addr/metrics" "$tmp/metrics.txt"
for fam in \
    komodo_server_requests_total \
    komodo_server_responses_total \
    komodo_pool_workers \
    komodo_pool_restores_total \
    komodo_request_duration_seconds_bucket \
    komodo_flight_traces_seen_total \
    go_goroutines \
    process_uptime_seconds; do
    grep -q "^$fam" "$tmp/metrics.txt" || {
        echo "obs-smoke: /metrics missing family $fam" >&2
        exit 1
    }
done
echo "obs-smoke: /metrics serves all expected families"

kill -TERM "$pid"
wait "$pid"
status=$?
pid=
if [ "$status" -ne 0 ]; then
    echo "obs-smoke: server exited $status after SIGTERM" >&2
    exit 1
fi
echo "obs-smoke: OK (traced requests, flight recorder, timeline, metrics, clean drain)"
