// Benchmarks regenerating the paper's evaluation (§8). Each table/figure
// has a benchmark; sub-benchmarks report the simulated-cycle (or
// simulated-ms) measurements as custom metrics next to the paper's
// published numbers, so `go test -bench .` prints the whole evaluation.
// See EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package repro

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/board"
	"repro/internal/eval"
	"repro/internal/kasm"
	"repro/internal/nwos"
	"repro/internal/telemetry"
)

func sanitize(s string) string {
	return strings.NewReplacer(" ", "_", "+", "plus", "(", "", ")", "").Replace(s)
}

// BenchmarkTable3 regenerates the Table 3 microbenchmarks. The measurement
// is the deterministic simulated-cycle count; ns/op reflects simulator
// speed and is not an evaluation result.
func BenchmarkTable3(b *testing.B) {
	rows, err := eval.Table3()
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		b.Run(sanitize(r.Operation), func(b *testing.B) {
			var last eval.Table3Row
			for i := 0; i < b.N; i++ {
				rs, err := eval.Table3()
				if err != nil {
					b.Fatal(err)
				}
				for _, rr := range rs {
					if rr.Operation == r.Operation {
						last = rr
					}
				}
			}
			b.ReportMetric(float64(last.Cycles), "sim-cycles")
			b.ReportMetric(float64(r.PaperCycles), "paper-cycles")
			// The §8.1 attribution: how much of the row's SMC was
			// world-switch mechanics vs. the call body's own work.
			b.ReportMetric(float64(last.DispatchCycles), "dispatch-cycles")
			b.ReportMetric(float64(last.BodyCycles), "body-cycles")
		})
	}
}

// BenchmarkTelemetryNopOverhead pins the tentpole's cost contract: an
// attached recorder with the default nop sink must add no measurable
// overhead to the SMC hot path. Both sub-benchmarks run the identical
// full enclave crossing; compare their ns/op.
func BenchmarkTelemetryNopOverhead(b *testing.B) {
	run := func(b *testing.B, rec *telemetry.Recorder) {
		plat, err := board.Boot(board.Config{Seed: 1, Telemetry: rec})
		if err != nil {
			b.Fatal(err)
		}
		os := nwos.New(plat.Machine, plat.Monitor, plat.Monitor.NPages())
		os.SetTelemetry(rec)
		img, err := kasm.ExitConst(0).Image()
		if err != nil {
			b.Fatal(err)
		}
		enc, err := os.BuildEnclave(img)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := os.Enter(enc); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("uninstrumented", func(b *testing.B) { run(b, nil) })
	b.Run("nop-sink", func(b *testing.B) { run(b, telemetry.New()) })
}

// BenchmarkSGXComparison regenerates the §8.1 crossing-latency comparison.
func BenchmarkSGXComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.SGXComparison()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(float64(r.Komodo), "komodo-"+sanitize(r.Operation))
				b.ReportMetric(float64(r.SGX), "sgx-"+sanitize(r.Operation))
			}
		}
	}
}

// BenchmarkFigure5 regenerates the notary curve: time to notarise a
// document of each size, in an enclave vs. as a native process, in
// simulated milliseconds at the paper's 900 MHz clock.
func BenchmarkFigure5(b *testing.B) {
	for _, kb := range eval.Figure5Sizes {
		kb := kb
		b.Run(sizeName(kb), func(b *testing.B) {
			var pt eval.Fig5Point
			for i := 0; i < b.N; i++ {
				pts, err := eval.Figure5([]int{kb})
				if err != nil {
					b.Fatal(err)
				}
				pt = pts[0]
			}
			b.ReportMetric(pt.EnclaveMS, "enclave-sim-ms")
			b.ReportMetric(pt.NativeMS, "native-sim-ms")
		})
	}
}

func sizeName(kb int) string { return strconv.Itoa(kb) + "kB" }

// BenchmarkAblation measures the §8.1 crossing-optimisation ablation:
// the paper-faithful always-flush monitor vs. the skip-flush fast path
// ("optimisations that we aim to add, but only after proving their
// correctness" — our refinement suite is that proof's analogue).
func BenchmarkAblation(b *testing.B) {
	var rows []eval.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = eval.Ablation()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		name := "unoptimised"
		if strings.HasPrefix(r.Config, "optimised") {
			name = "optimised"
		}
		b.ReportMetric(float64(r.RepeatCrossing), name+"-repeat-cycles")
	}
}

// BenchmarkDensity measures platform behaviour as resident-enclave count
// grows — the §1 concurrency claim made quantitative. The crossing cost
// stays flat: the monitor's dispatch is O(1) in enclaves.
func BenchmarkDensity(b *testing.B) {
	var pts []eval.DensityPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = eval.Density([]int{1, 16, 40})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(float64(p.CrossingCycles), "crossing-at-"+strconv.Itoa(p.Enclaves))
	}
}

// BenchmarkTable2LineCounts regenerates the code-size breakdown.
func BenchmarkTable2LineCounts(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		rows, err := eval.CountLines(".")
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, r := range rows {
			total += r.Spec + r.Impl + r.Proof
		}
	}
	b.ReportMetric(float64(total), "total-loc")
}

// BenchmarkEnclaveCrossing measures real (host) time per full enclave
// crossing through the whole simulated stack — the simulator's own
// performance, complementing the simulated-cycle Table 3.
func BenchmarkEnclaveCrossing(b *testing.B) {
	plat, err := board.Boot(board.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	os := nwos.New(plat.Machine, plat.Monitor, plat.Monitor.NPages())
	img, err := kasm.ExitConst(0).Image()
	if err != nil {
		b.Fatal(err)
	}
	enc, err := os.BuildEnclave(img)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := os.Enter(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpreter measures raw simulated-instruction throughput (the
// KARM interpreter running the SHA-256 inner loop in an enclave) across
// the three cache configurations: superblock cache (the default), decode
// cache only, and fully uncached. Comparing adjacent sub-benchmarks' ns/op
// gives each layer's speedup as recorded in docs/PERFORMANCE.md.
func BenchmarkInterpreter(b *testing.B) {
	run := func(b *testing.B, noBlockCache, noDecodeCache bool) {
		plat, err := board.Boot(board.Config{
			Seed:               1,
			DisableBlockCache:  noBlockCache,
			DisableDecodeCache: noDecodeCache,
		})
		if err != nil {
			b.Fatal(err)
		}
		os := nwos.New(plat.Machine, plat.Monitor, plat.Monitor.NPages())
		img, err := kasm.HashShared(1).Image()
		if err != nil {
			b.Fatal(err)
		}
		enc, err := os.BuildEnclave(img)
		if err != nil {
			b.Fatal(err)
		}
		doc := make([]uint32, 1024) // 4 kB
		if err := os.WriteInsecure(enc.SharedPA[0], doc); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			retired := plat.Machine.Retired()
			if _, _, err := os.Enter(enc, 1024); err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(float64(plat.Machine.Retired()-retired), "sim-insns/op")
			}
		}
	}
	b.Run("block-cache", func(b *testing.B) { run(b, false, false) })
	b.Run("decode-cache", func(b *testing.B) { run(b, true, false) })
	b.Run("no-decode-cache", func(b *testing.B) { run(b, true, true) })
}

// BenchmarkPerf regenerates the hot-path performance report (the "perf"
// section of BENCH_*.json): interpreter throughput across the cache
// configurations, delta-restore traffic, and serve-loop latency.
func BenchmarkPerf(b *testing.B) {
	var r *eval.PerfReport
	var err error
	for i := 0; i < b.N; i++ {
		r, err = eval.Perf(64)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.InstrPerSec/1e6, "Minstr/s")
	b.ReportMetric(r.BlockCacheSpeedup, "block-speedup")
	b.ReportMetric(r.MeanBlockLen, "block-len")
	b.ReportMetric(r.DecodeCacheSpeedup, "decode-speedup")
	b.ReportMetric(float64(r.RestoreWordsPerRequest), "restore-words/req")
	b.ReportMetric(r.RestoreReduction, "restore-reduction")
	b.ReportMetric(r.ServeP50Micros, "serve-p50-us")
	b.ReportMetric(r.ServeP95Micros, "serve-p95-us")
}

// BenchmarkRestore measures the golden-snapshot restore itself after one
// notary request's worth of dirtying: the delta path against a forced
// full copy of the same machine.
func BenchmarkRestore(b *testing.B) {
	boot := func(b *testing.B) (*board.Platform, *nwos.OS, *nwos.Enclave) {
		plat, err := board.Boot(board.Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		os := nwos.New(plat.Machine, plat.Monitor, plat.Monitor.NPages())
		img, err := kasm.NotaryGuest(1).Image()
		if err != nil {
			b.Fatal(err)
		}
		enc, err := os.BuildEnclave(img)
		if err != nil {
			b.Fatal(err)
		}
		return plat, os, enc
	}
	request := func(b *testing.B, os *nwos.OS, enc *nwos.Enclave) {
		if err := os.WriteInsecure(enc.SharedPA[0], make([]uint32, 64)); err != nil {
			b.Fatal(err)
		}
		if _, _, err := os.Enter(enc, 64); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("delta", func(b *testing.B) {
		plat, os, enc := boot(b)
		golden := plat.Machine.Snapshot()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			request(b, os, enc)
			if err := plat.Machine.Restore(golden); err != nil {
				b.Fatal(err)
			}
		}
		rs := plat.Machine.Phys.RestoreStats()
		b.ReportMetric(float64(rs.LastWordsCopied), "words/restore")
	})
	b.Run("full", func(b *testing.B) {
		plat, os, enc := boot(b)
		// Boots are deterministic, so an identically-seeded twin's golden
		// snapshot is bit-identical — but foreign, so its generation stamp
		// is not comparable and every restore takes the full-copy path:
		// the pre-delta behaviour.
		twin, _, _ := boot(b)
		golden := twin.Machine.Snapshot()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			request(b, os, enc)
			if err := plat.Machine.Restore(golden); err != nil {
				b.Fatal(err)
			}
		}
		rs := plat.Machine.Phys.RestoreStats()
		b.ReportMetric(float64(rs.LastWordsCopied), "words/restore")
	})
}
