// komodo-load is a closed-loop load generator for the enclave serving
// layer. Each client loops request → response → next request, so offered
// load tracks service capacity and the queue exercises real backpressure.
//
// Against a running komodo-serve:
//
//	komodo-load -url http://127.0.0.1:8787 -clients 8 -duration 5s -verify
//
// Self-contained provisioning comparison (boots its own pools in-process,
// the EXPERIMENTS.md serving section):
//
//	komodo-load -compare -workers 4 -clients 8 -duration 5s
//	komodo-load -sweep 1,2,4,8 -clients 8 -duration 3s
//
// Fleet mode: -targets takes a komodo-gateway URL (or a comma-separated
// backend list to skip the gateway), shards notary traffic with -shards,
// attributes latency per backend via the X-Komodo-Backend response
// header, and cross-checks that no (backend, worker, epoch, restores)
// counter stream ever repeats a value. -sweep-backends boots whole
// in-process fleets (N backends behind a gateway) for the scaling curve:
//
//	komodo-load -targets http://127.0.0.1:9090 -endpoint notary -shards 8
//	komodo-load -sweep-backends 1,2,4 -workers 2 -endpoint notary -json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/gateway"
	"repro/internal/kasm"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/tenant"
)

type options struct {
	url         string
	clients     int
	duration    time.Duration
	requests    int
	endpoint    string
	verify      bool
	jsonOut     bool
	traceparent string

	targets       string
	shards        int
	sweepBackends string

	workers int
	queue   int
	mode    string
	seed    uint64
	reuse   int
	compare bool
	sweep   string

	batch       int
	batchWindow time.Duration
	tiers       string
	tenants     string
	tenantMix   string

	zipf         float64
	zipfDocs     int
	respectRetry bool
}

// Result is one load run's summary (also the -json schema).
type Result struct {
	Label      string  `json:"label"`
	Mode       string  `json:"mode,omitempty"`
	Workers    int     `json:"workers,omitempty"`
	Clients    int     `json:"clients"`
	Seconds    float64 `json:"seconds"`
	OK         int     `json:"ok"`
	Rejected   int     `json:"rejected_429"`
	Unavail    int     `json:"unavailable_503"`
	Errors     int     `json:"errors"`
	Verified   int     `json:"verified"`
	Throughput float64 `json:"requests_per_sec"`
	P50ms      float64 `json:"p50_ms"`
	P95ms      float64 `json:"p95_ms"`
	P99ms      float64 `json:"p99_ms"`
	MaxMs      float64 `json:"max_ms"`
	// CounterMin/CounterMax are the lowest and highest notary counters
	// observed across all clients (0/0 when no notary requests ran).
	// Scripts use CounterMax to assert monotonicity across restarts.
	CounterMin uint32 `json:"counter_min,omitempty"`
	CounterMax uint32 `json:"counter_max,omitempty"`
	// CounterDups counts notary responses that repeated a counter value
	// already seen on the same (backend, worker, epoch, restores) stream.
	// Any nonzero value means a counter was lost or duplicated — e.g. a
	// failover or migration spliced two lineages together.
	CounterDups int `json:"counter_dups"`
	// Backends is the fleet size when driving through a gateway
	// (-sweep-backends), and PerBackend the per-node latency view built
	// from the X-Komodo-Backend attribution header (merged quantiles in
	// the top-level fields come from summing these histograms).
	Backends   int             `json:"backends,omitempty"`
	PerBackend []BackendResult `json:"per_backend,omitempty"`
	// RejectClasses breaks every 429/503 down by the X-Komodo-Reject
	// header: rate_limit/quota/shed are admission control, queue_full is
	// batch-queue saturation, timeout/drain are the 503 classes, and
	// "unclassified" is a rejection without the header.
	RejectClasses map[string]int `json:"reject_classes,omitempty"`
	// RetryAfterMissing counts 429/503 responses that arrived without a
	// Retry-After header (the contract says every rejection carries one).
	RetryAfterMissing int `json:"retry_after_missing"`
	// RetryAfterSlept counts the rejections whose Retry-After the client
	// actually honored (-respect-retry-after), and RetryAfterSleptMs the
	// total wall time spent in those sleeps.
	RetryAfterSlept   int     `json:"retry_after_slept,omitempty"`
	RetryAfterSleptMs float64 `json:"retry_after_slept_ms,omitempty"`
	// CoalescedReceipts counts batch receipts whose leaf was shared with
	// other requests by cross-request dedup (proof's coalesced > 1).
	CoalescedReceipts int `json:"coalesced_receipts,omitempty"`
	// ReceiptsVerified counts batch receipts proven offline with
	// server.VerifyBatchReceipt (-verify on a batched notary workload).
	ReceiptsVerified int `json:"receipts_verified,omitempty"`
	// Crossings is the enclave SMC-enter delta across the run summed over
	// all targets' /v1/stats telemetry, and CrossingsPerOK that divided
	// by OK — the number batching exists to shrink.
	Crossings      uint64  `json:"enclave_crossings,omitempty"`
	CrossingsPerOK float64 `json:"crossings_per_ok,omitempty"`
	// PerTier is the per-tier latency/outcome view built from the
	// X-Komodo-Tier response header (populated with -tenant-mix).
	PerTier []TierResult `json:"per_tier,omitempty"`
}

// TierResult is one admission tier's slice of a run.
type TierResult struct {
	Tier     string  `json:"tier"`
	OK       int     `json:"ok"`
	Rejected int     `json:"rejected"`
	P50ms    float64 `json:"p50_ms"`
	P95ms    float64 `json:"p95_ms"`
	P99ms    float64 `json:"p99_ms"`
}

// BackendResult is one backend's slice of a fleet run.
type BackendResult struct {
	Backend string  `json:"backend"`
	OK      int     `json:"ok"`
	P50ms   float64 `json:"p50_ms"`
	P95ms   float64 `json:"p95_ms"`
	P99ms   float64 `json:"p99_ms"`
	MaxMs   float64 `json:"max_ms"`
}

func main() {
	var o options
	flag.StringVar(&o.url, "url", "", "target server base URL (empty: boot an in-process pool)")
	flag.IntVar(&o.clients, "clients", 8, "concurrent closed-loop clients")
	flag.DurationVar(&o.duration, "duration", 5*time.Second, "run length (ignored if -requests > 0)")
	flag.IntVar(&o.requests, "requests", 0, "total request budget (0 = run for -duration)")
	flag.StringVar(&o.endpoint, "endpoint", "attest", "workload: attest | notary | mixed")
	flag.BoolVar(&o.verify, "verify", false, "verify every quote client-side with kasm.VerifyQuote")
	flag.BoolVar(&o.jsonOut, "json", false, "emit machine-readable JSON instead of text")
	flag.StringVar(&o.traceparent, "traceparent", "", "W3C traceparent header to send on every request (exercises inbound trace propagation)")
	flag.IntVar(&o.workers, "workers", 4, "in-process: pool size")
	flag.IntVar(&o.queue, "queue", 64, "in-process: queue depth")
	flag.StringVar(&o.mode, "mode", "snapshot", "in-process: snapshot | boot")
	flag.Uint64Var(&o.seed, "seed", 42, "in-process: board seed")
	flag.IntVar(&o.reuse, "max-reuse", 0, "in-process: per-worker reuse limit")
	flag.BoolVar(&o.compare, "compare", false, "run snapshot-clone vs boot-per-request back to back")
	flag.StringVar(&o.sweep, "sweep", "", "comma-separated pool sizes to sweep (snapshot mode)")
	flag.StringVar(&o.targets, "targets", "", "fleet targets: one gateway URL, or comma-separated backend URLs")
	flag.IntVar(&o.shards, "shards", 0, "notary shard keys to spread across (client c uses shard s<c mod N>; 0 = unsharded)")
	flag.StringVar(&o.sweepBackends, "sweep-backends", "", "comma-separated fleet sizes: boot N in-process backends behind a gateway per entry")
	flag.IntVar(&o.batch, "batch", 0, "in-process: batched notary signing with this batch size (0 = unbatched)")
	flag.DurationVar(&o.batchWindow, "batch-window", 2*time.Millisecond, "in-process: partial-batch close window (with -batch)")
	flag.StringVar(&o.tiers, "tiers", "", "in-process: tenant tiers name:rate:burst:quota[:shedat];...")
	flag.StringVar(&o.tenants, "tenants", "", "in-process: tenant tokens token=tier,... (with -tiers)")
	flag.StringVar(&o.tenantMix, "tenant-mix", "", "weighted X-Komodo-Tenant tokens per request: token:weight,token:weight (token '-' sends none)")
	flag.Float64Var(&o.zipf, "zipf", 0, "notary docs drawn Zipf-skewed from a shared corpus with this exponent (> 1; 0 = unique random docs)")
	flag.IntVar(&o.zipfDocs, "zipf-docs", 1024, "distinct documents in the Zipf corpus (with -zipf)")
	flag.BoolVar(&o.respectRetry, "respect-retry-after", false, "honor Retry-After on 429/503 (sleep it, capped at 2s) instead of the fixed backoff")
	flag.Parse()
	if o.zipf != 0 && o.zipf <= 1 {
		fail(fmt.Errorf("-zipf exponent must be > 1, got %v", o.zipf))
	}
	if o.zipfDocs < 1 {
		fail(fmt.Errorf("-zipf-docs must be >= 1, got %d", o.zipfDocs))
	}

	var results []Result
	switch {
	case o.sweepBackends != "":
		for _, f := range strings.Split(o.sweepBackends, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				fail(fmt.Errorf("bad -sweep-backends entry %q", f))
			}
			r, err := runFleet(o, n)
			if err != nil {
				fail(err)
			}
			results = append(results, r)
		}
	case o.targets != "":
		var bases []string
		for _, u := range strings.Split(o.targets, ",") {
			bases = append(bases, strings.TrimRight(strings.TrimSpace(u), "/"))
		}
		label := "gateway"
		if len(bases) > 1 {
			label = fmt.Sprintf("direct/%db", len(bases))
		}
		r, err := drive(o, bases, label)
		if err != nil {
			fail(err)
		}
		results = append(results, r)
	case o.compare:
		for _, mode := range []string{"boot", "snapshot"} {
			o.mode = mode
			r, err := runInProcess(o, fmt.Sprintf("%s/%dw", mode, o.workers))
			if err != nil {
				fail(err)
			}
			results = append(results, r)
		}
	case o.sweep != "":
		for _, f := range strings.Split(o.sweep, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				fail(fmt.Errorf("bad -sweep entry %q", f))
			}
			o.workers = n
			r, err := runInProcess(o, fmt.Sprintf("%s/%dw", o.mode, n))
			if err != nil {
				fail(err)
			}
			results = append(results, r)
		}
	case o.url == "":
		r, err := runInProcess(o, fmt.Sprintf("%s/%dw", o.mode, o.workers))
		if err != nil {
			fail(err)
		}
		results = append(results, r)
	default:
		r, err := drive(o, []string{strings.TrimRight(o.url, "/")}, "remote")
		if err != nil {
			fail(err)
		}
		results = append(results, r)
	}

	if o.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fail(err)
		}
		return
	}
	fmt.Printf("%-16s %9s %7s %7s %6s %8s %8s %8s %8s\n",
		"run", "req/s", "ok", "429", "err", "p50 ms", "p95 ms", "p99 ms", "max ms")
	for _, r := range results {
		fmt.Printf("%-16s %9.1f %7d %7d %6d %8.2f %8.2f %8.2f %8.2f",
			r.Label, r.Throughput, r.OK, r.Rejected, r.Errors+r.Unavail, r.P50ms, r.P95ms, r.P99ms, r.MaxMs)
		if r.CounterMax > 0 {
			fmt.Printf("  counters=%d..%d", r.CounterMin, r.CounterMax)
		}
		if r.CounterDups > 0 {
			fmt.Printf("  DUPS=%d", r.CounterDups)
		}
		if r.CrossingsPerOK > 0 {
			fmt.Printf("  xings/ok=%.2f", r.CrossingsPerOK)
		}
		if r.ReceiptsVerified > 0 {
			fmt.Printf("  receipts=%d", r.ReceiptsVerified)
		}
		if r.CoalescedReceipts > 0 {
			fmt.Printf("  coalesced=%d", r.CoalescedReceipts)
		}
		if r.RetryAfterSlept > 0 {
			fmt.Printf("  retry-slept=%d(%.0fms)", r.RetryAfterSlept, r.RetryAfterSleptMs)
		}
		fmt.Println()
		for _, pb := range r.PerBackend {
			fmt.Printf("  %-14s %9s %7d %7s %6s %8.2f %8.2f %8.2f %8.2f\n",
				"· "+pb.Backend, "", pb.OK, "", "", pb.P50ms, pb.P95ms, pb.P99ms, pb.MaxMs)
		}
		for _, pt := range r.PerTier {
			fmt.Printf("  %-14s %9s %7d %7d %6s %8.2f %8.2f %8.2f\n",
				"· tier/"+pt.Tier, "", pt.OK, pt.Rejected, "", pt.P50ms, pt.P95ms, pt.P99ms)
		}
		if len(r.RejectClasses) > 0 {
			classes := make([]string, 0, len(r.RejectClasses))
			for c := range r.RejectClasses {
				classes = append(classes, c)
			}
			sort.Strings(classes)
			fmt.Printf("  rejects:")
			for _, c := range classes {
				fmt.Printf(" %s=%d", c, r.RejectClasses[c])
			}
			if r.RetryAfterMissing > 0 {
				fmt.Printf("  RETRY-AFTER-MISSING=%d", r.RetryAfterMissing)
			}
			fmt.Println()
		}
	}
	if len(results) == 2 && results[0].Mode == "boot-each" && results[1].Mode == "snapshot" &&
		results[0].Throughput > 0 {
		fmt.Printf("\nsnapshot-clone provisioning: %.1fx the throughput of boot-per-request\n",
			results[1].Throughput/results[0].Throughput)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "komodo-load:", err)
	os.Exit(1)
}

// applyServing applies the in-process batching/admission flags to one
// backend's server config (each backend gets its own registry — tier
// buckets are per-node state).
func applyServing(o options, cfg *server.Config) error {
	if o.tiers != "" {
		specs, err := tenant.ParseTiers(o.tiers)
		if err != nil {
			return fmt.Errorf("-tiers: %w", err)
		}
		tokens, err := tenant.ParseTenants(o.tenants)
		if err != nil {
			return fmt.Errorf("-tenants: %w", err)
		}
		reg, err := tenant.NewRegistry(specs, tokens, "")
		if err != nil {
			return err
		}
		cfg.Admission = reg
	}
	cfg.BatchMaxSize = o.batch
	cfg.BatchWindow = o.batchWindow
	return nil
}

// runInProcess boots a pool + server on a loopback listener and drives it.
func runInProcess(o options, label string) (Result, error) {
	pcfg := pool.Config{Size: o.workers, Boot: server.Blueprint(o.seed), MaxReuse: o.reuse}
	switch o.mode {
	case "snapshot":
		pcfg.Mode = pool.ModeSnapshot
	case "boot":
		pcfg.Mode = pool.ModeBootEach
	default:
		return Result{}, fmt.Errorf("unknown -mode %q", o.mode)
	}
	p, err := pool.New(pcfg)
	if err != nil {
		return Result{}, err
	}
	scfg := server.Config{Pool: p, QueueDepth: o.queue, RequestTimeout: 30 * time.Second}
	if err := applyServing(o, &scfg); err != nil {
		return Result{}, err
	}
	srv := server.New(scfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Result{}, err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain()
		srv.Close()
		hs.Shutdown(ctx)
		p.Close(ctx)
	}()

	r, err := drive(o, []string{"http://" + ln.Addr().String()}, label)
	if err != nil {
		return r, err
	}
	r.Mode = pcfg.Mode.String()
	r.Workers = o.workers
	return r, nil
}

// runFleet boots n full backend stacks (pool + server, each on its own
// loopback listener) behind an in-process gateway, and drives the load
// through the gateway — the -sweep-backends scaling measurement. Each
// fleet entry is labelled fleet/<n>b and carries the per-backend view.
func runFleet(o options, n int) (Result, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	var specs []gateway.BackendSpec
	var cleanup []func()
	defer func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}()
	for i := 0; i < n; i++ {
		pcfg := pool.Config{Size: o.workers, Boot: server.Blueprint(o.seed), MaxReuse: o.reuse, Mode: pool.ModeSnapshot}
		p, err := pool.New(pcfg)
		if err != nil {
			return Result{}, fmt.Errorf("backend %d pool: %w", i, err)
		}
		scfg := server.Config{Pool: p, QueueDepth: o.queue, RequestTimeout: 30 * time.Second}
		if err := applyServing(o, &scfg); err != nil {
			return Result{}, err
		}
		srv := server.New(scfg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return Result{}, err
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		cleanup = append(cleanup, func() {
			srv.Drain()
			srv.Close()
			hs.Shutdown(ctx)
			p.Close(ctx)
		})
		specs = append(specs, gateway.BackendSpec{Name: fmt.Sprintf("b%d", i), URL: "http://" + ln.Addr().String()})
	}

	g, err := gateway.New(gateway.Config{Backends: specs, ProbeInterval: 200 * time.Millisecond})
	if err != nil {
		return Result{}, err
	}
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Result{}, err
	}
	ghs := &http.Server{Handler: g}
	go ghs.Serve(gln)
	cleanup = append(cleanup, func() {
		ghs.Shutdown(ctx)
		g.Close()
	})

	fo := o
	if fo.shards == 0 {
		// Spread shards well past the fleet size so every backend owns
		// several arcs of real traffic.
		fo.shards = 4 * n
	}
	r, err := drive(fo, []string{"http://" + gln.Addr().String()}, fmt.Sprintf("fleet/%db", n))
	if err != nil {
		return r, err
	}
	r.Mode = "snapshot"
	r.Workers = o.workers
	r.Backends = n
	return r, nil
}

// streamBook detects lost or duplicated notary counters across the whole
// run: every observed (backend, worker, epoch, restores, counter) tuple
// must be unique. Duplicate detection is insensitive to response
// reordering between concurrent clients (unlike per-observation
// monotonicity), so it is exactly the invariant a fleet must keep
// through failover and migration.
type streamBook struct {
	mu     sync.Mutex
	seen   map[string]struct{}
	roots  map[string]string
	leaves map[string]string
	dups   int
}

func (sb *streamBook) record(backend string, nr *server.NotaryResponse) {
	stream := fmt.Sprintf("%s/%d/%d/%d", backend, nr.Worker, nr.Epoch, nr.Restores)
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if nr.Batch != nil {
		// One counter tick covers a whole batch, so K receipts sharing a
		// counter are expected — but they must all share ONE Merkle root
		// (a second root on the same counter is a double-spent tick), and
		// within (stream, counter, root) each leaf index appears once.
		ck := fmt.Sprintf("%s#%d", stream, nr.Counter)
		if root, ok := sb.roots[ck]; ok && root != nr.Batch.Root {
			sb.dups++
			return
		}
		sb.roots[ck] = nr.Batch.Root
		// Each leaf index maps to exactly one leaf hash. With dedup,
		// several receipts legitimately share an index — but only when
		// they agree on the leaf AND the proof says it was coalesced; a
		// repeated index with a different leaf (or on a sole-owner leaf)
		// is still a double-spend.
		lk := fmt.Sprintf("%s@%d", ck, nr.Batch.LeafIndex)
		if leaf, ok := sb.leaves[lk]; ok {
			if leaf != nr.Batch.Leaf || nr.Batch.Coalesced <= 1 {
				sb.dups++
			}
		} else {
			sb.leaves[lk] = nr.Batch.Leaf
		}
		return
	}
	key := fmt.Sprintf("%s#%d", stream, nr.Counter)
	if _, dup := sb.seen[key]; dup {
		sb.dups++
	} else {
		sb.seen[key] = struct{}{}
	}
}

// tokenMix is the parsed -tenant-mix: a weighted set of admission tokens
// sampled per request. The token "-" means "send no tenant header".
type tokenMix struct {
	tokens []string
	cumsum []int
	total  int
}

func parseMix(s string) (*tokenMix, error) {
	if s == "" {
		return nil, nil
	}
	m := &tokenMix{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		tok, weight := part, 1
		if i := strings.LastIndex(part, ":"); i >= 0 {
			w, err := strconv.Atoi(part[i+1:])
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("bad -tenant-mix weight in %q", part)
			}
			tok, weight = part[:i], w
		}
		m.total += weight
		m.tokens = append(m.tokens, tok)
		m.cumsum = append(m.cumsum, m.total)
	}
	if m.total == 0 {
		return nil, fmt.Errorf("empty -tenant-mix %q", s)
	}
	return m, nil
}

func (m *tokenMix) pick(rng *rand.Rand) string {
	n := rng.Intn(m.total)
	for i, c := range m.cumsum {
		if n < c {
			if m.tokens[i] == "-" {
				return ""
			}
			return m.tokens[i]
		}
	}
	return ""
}

// sumCrossings sums the SMC "enter" count over each distinct target's
// /v1/stats telemetry (fleet-merged telemetry when the target is a
// gateway). Returns ok=false when any target doesn't expose it.
func sumCrossings(bases []string) (uint64, bool) {
	seen := map[string]bool{}
	var total uint64
	for _, base := range bases {
		if seen[base] {
			continue
		}
		seen[base] = true
		var sp struct {
			Telemetry telemetry.Snapshot `json:"telemetry"`
			Fleet     *struct {
				Telemetry telemetry.Snapshot `json:"telemetry"`
			} `json:"fleet"`
		}
		if err := getJSON(base+"/v1/stats", &sp); err != nil {
			return 0, false
		}
		tel := sp.Telemetry
		if sp.Fleet != nil {
			tel = sp.Fleet.Telemetry
		}
		found := false
		for _, cs := range tel.SMC {
			// Every monitor entry that hands the CPU to enclave code is a
			// world crossing — both fresh entries and interrupt resumes.
			if cs.Name == "KOM_SMC_ENTER" || cs.Name == "KOM_SMC_RESUME" {
				total += cs.Count
				found = true
			}
		}
		if !found {
			return 0, false
		}
	}
	return total, true
}

// drive runs the closed-loop clients against the targets and aggregates.
// Client c is pinned to bases[c%len(bases)]; with -shards it also tags
// notary requests with shard s<c mod shards>, so through a gateway the
// shard→backend placement is exercised for real. Latency is attributed
// per backend via the X-Komodo-Backend header (falling back to the
// target URL when absent), and the merged quantiles are computed over
// the union of the per-backend histograms.
func drive(o options, bases []string, label string) (Result, error) {
	var quoteKey [8]uint32
	if o.verify {
		var kr server.QuoteKeyResponse
		if err := getJSON(bases[0]+"/v1/quotekey", &kr); err != nil {
			return Result{}, fmt.Errorf("fetching quote key: %w", err)
		}
		k, err := server.DecodeWords(kr.QuoteKey)
		if err != nil {
			return Result{}, err
		}
		quoteKey = k
	}

	mix, err := parseMix(o.tenantMix)
	if err != nil {
		return Result{}, err
	}

	type tally struct {
		ok, rejected, unavail, errs, verified, receipts int
		coalesced                                       int
		counterMin, counterMax                          uint32
		err                                             error
	}
	tallies := make([]tally, o.clients)
	book := &streamBook{seen: map[string]struct{}{}, roots: map[string]string{}, leaves: map[string]string{}}

	// Rejection-class and per-tier ledgers shared by all clients.
	var classMu sync.Mutex
	rejectClasses := map[string]int{}
	retryMissing := 0
	retrySlept := 0
	var retrySleptFor time.Duration
	tierRejected := map[string]int{}

	// Zipf skew: all clients draw documents from one deterministic shared
	// corpus, so the hot ranks collide across clients — exactly the
	// workload cross-request dedup coalesces.
	var corpus [][]byte
	if o.zipf > 0 {
		corpus = make([][]byte, o.zipfDocs)
		for i := range corpus {
			drng := rand.New(rand.NewSource(int64(i) + 7919))
			d := make([]byte, 64+drng.Intn(448))
			drng.Read(d)
			corpus[i] = d
		}
	}
	// Lock-free histograms shared by every client goroutine, one per
	// backend plus on-demand; quantiles come from their log-linear
	// buckets rather than a sorted sample slice.
	var histMu sync.Mutex
	hists := map[string]*obs.Histogram{}
	tierHists := map[string]*obs.Histogram{}
	histIn := func(m map[string]*obs.Histogram, key string) *obs.Histogram {
		histMu.Lock()
		defer histMu.Unlock()
		h := m[key]
		if h == nil {
			h = obs.NewHistogram()
			m[key] = h
		}
		return h
	}
	histFor := func(backend string) *obs.Histogram { return histIn(hists, backend) }

	crossBefore, crossOK := sumCrossings(bases)

	deadline := time.Now().Add(o.duration)
	var budget chan struct{}
	if o.requests > 0 {
		budget = make(chan struct{}, o.requests)
		for i := 0; i < o.requests; i++ {
			budget <- struct{}{}
		}
		close(budget)
		deadline = time.Now().Add(24 * time.Hour)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			t := &tallies[c]
			rng := rand.New(rand.NewSource(int64(c) + 1))
			var zs *rand.Zipf
			if corpus != nil {
				zs = rand.NewZipf(rng, o.zipf, 1, uint64(len(corpus)-1))
			}
			client := &http.Client{Timeout: 60 * time.Second}
			base := bases[c%len(bases)]
			shard := ""
			if o.shards > 0 {
				shard = fmt.Sprintf("s%d", c%o.shards)
			}
			for seq := 0; time.Now().Before(deadline); seq++ {
				if budget != nil {
					if _, more := <-budget; !more {
						return
					}
				}
				ep := o.endpoint
				if ep == "mixed" {
					if rng.Intn(2) == 0 {
						ep = "attest"
					} else {
						ep = "notary"
					}
				}
				token := ""
				if mix != nil {
					token = mix.pick(rng)
				}
				var doc []byte
				if zs != nil && ep == "notary" {
					doc = corpus[zs.Uint64()]
				}
				reqStart := time.Now()
				out, err := doRequest(client, base, ep, c, seq, rng, o.traceparent, shard, token, doc)
				if err != nil {
					t.errs++
					continue
				}
				if out.servedBy == "" {
					out.servedBy = base
				}
				switch out.status {
				case http.StatusOK:
					t.ok++
					elapsed := time.Since(reqStart)
					histFor(out.servedBy).Observe(elapsed)
					if out.tier != "" {
						histIn(tierHists, out.tier).Observe(elapsed)
					}
					if ep == "notary" {
						var nr server.NotaryResponse
						if json.Unmarshal(out.body, &nr) == nil && nr.Counter > 0 {
							book.record(out.servedBy, &nr)
							if t.counterMin == 0 || nr.Counter < t.counterMin {
								t.counterMin = nr.Counter
							}
							if nr.Counter > t.counterMax {
								t.counterMax = nr.Counter
							}
							if nr.Batch != nil && nr.Batch.Coalesced > 1 {
								t.coalesced++
							}
							if o.verify && nr.Batch != nil {
								if err := server.VerifyBatchReceipt(nr, out.doc); err != nil {
									t.err = fmt.Errorf("batch receipt verification failed: %v", err)
									return
								}
								t.receipts++
							}
						}
					}
					if o.verify && ep == "attest" {
						ok, verr := verifyAttest(out.body, quoteKey, fmt.Sprintf("nonce-%d-%d", c, seq))
						if verr != nil || !ok {
							t.err = fmt.Errorf("quote verification failed: %v", verr)
							return
						}
						t.verified++
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					if out.status == http.StatusTooManyRequests {
						t.rejected++
					} else {
						t.unavail++
					}
					class := out.reject
					if class == "" {
						class = "unclassified"
					}
					classMu.Lock()
					rejectClasses[class]++
					if !out.retryAfter {
						retryMissing++
					}
					if out.tier != "" {
						tierRejected[out.tier]++
					}
					classMu.Unlock()
					if o.respectRetry && out.retrySecs > 0 {
						// Honor the server's hint, capped so a pathological
						// Retry-After can't stall the whole run.
						nap := time.Duration(out.retrySecs) * time.Second
						if nap > 2*time.Second {
							nap = 2 * time.Second
						}
						time.Sleep(nap)
						classMu.Lock()
						retrySlept++
						retrySleptFor += nap
						classMu.Unlock()
					} else if out.status == http.StatusTooManyRequests {
						time.Sleep(500 * time.Microsecond) // brief backoff on saturation
					} else {
						time.Sleep(time.Millisecond)
					}
				default:
					t.errs++
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var r Result
	r.Label = label
	r.Clients = o.clients
	r.Seconds = elapsed.Seconds()
	for i := range tallies {
		t := &tallies[i]
		if t.err != nil {
			return r, t.err
		}
		r.OK += t.ok
		r.Rejected += t.rejected
		r.Unavail += t.unavail
		r.Errors += t.errs
		r.Verified += t.verified
		r.ReceiptsVerified += t.receipts
		r.CoalescedReceipts += t.coalesced
		if t.counterMax > 0 {
			if r.CounterMin == 0 || t.counterMin < r.CounterMin {
				r.CounterMin = t.counterMin
			}
			if t.counterMax > r.CounterMax {
				r.CounterMax = t.counterMax
			}
		}
	}
	if r.OK == 0 {
		return r, fmt.Errorf("no successful requests (429s: %d, 503s: %d, errors: %d)",
			r.Rejected, r.Unavail, r.Errors)
	}
	r.Throughput = float64(r.OK) / elapsed.Seconds()
	r.CounterDups = book.dups

	// Per-backend quantiles, plus a merged view over the union of all
	// samples (HistSnapshot.Merge, not an average of quantiles).
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	var merged obs.HistSnapshot
	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		snap := hists[name].Snapshot()
		merged.Merge(snap)
		if len(names) > 1 {
			r.PerBackend = append(r.PerBackend, BackendResult{
				Backend: name,
				OK:      int(snap.Count),
				P50ms:   ms(snap.Quantile(0.50)),
				P95ms:   ms(snap.Quantile(0.95)),
				P99ms:   ms(snap.Quantile(0.99)),
				MaxMs:   ms(time.Duration(snap.MaxNS)),
			})
		}
	}
	r.P50ms, r.P95ms, r.P99ms = ms(merged.Quantile(0.50)), ms(merged.Quantile(0.95)), ms(merged.Quantile(0.99))
	r.MaxMs = ms(time.Duration(merged.MaxNS))

	if len(rejectClasses) > 0 {
		r.RejectClasses = rejectClasses
	}
	r.RetryAfterMissing = retryMissing
	r.RetryAfterSlept = retrySlept
	r.RetryAfterSleptMs = float64(retrySleptFor.Microseconds()) / 1000
	tiers := make([]string, 0, len(tierHists))
	for tier := range tierHists {
		tiers = append(tiers, tier)
	}
	for tier := range tierRejected {
		if tierHists[tier] == nil {
			tiers = append(tiers, tier)
		}
	}
	sort.Strings(tiers)
	for _, tier := range tiers {
		tr := TierResult{Tier: tier, Rejected: tierRejected[tier]}
		if h := tierHists[tier]; h != nil {
			snap := h.Snapshot()
			tr.OK = int(snap.Count)
			tr.P50ms, tr.P95ms, tr.P99ms = ms(snap.Quantile(0.50)), ms(snap.Quantile(0.95)), ms(snap.Quantile(0.99))
		}
		r.PerTier = append(r.PerTier, tr)
	}

	// Crossings are a before/after delta over the targets' telemetry, so
	// they include batch amortisation: with K-sized batches the figure
	// approaches 1/K crossings per signed request.
	if crossOK {
		if crossAfter, ok := sumCrossings(bases); ok && crossAfter >= crossBefore {
			r.Crossings = crossAfter - crossBefore
			r.CrossingsPerOK = float64(r.Crossings) / float64(r.OK)
		}
	}
	return r, nil
}

// reqOut is one request's observed outcome: status and body, plus the
// response-header signals the tallies classify on (serving backend, tier,
// rejection class, Retry-After presence) and the document that was signed
// (for offline batch-receipt verification).
type reqOut struct {
	status     int
	body       []byte
	servedBy   string
	tier       string
	reject     string
	retryAfter bool
	retrySecs  int
	doc        []byte
}

// doRequest issues one request. servedBy is the backend that served it
// (the gateway's X-Komodo-Backend attribution header, "" when talking to
// a backend directly). A non-nil doc pins the notary document (Zipf
// corpus); nil draws a fresh random one.
func doRequest(client *http.Client, base, ep string, c, seq int, rng *rand.Rand, traceparent, shard, token string, doc []byte) (reqOut, error) {
	var out reqOut
	var req *http.Request
	var err error
	switch ep {
	case "attest":
		req, err = http.NewRequest(http.MethodGet,
			fmt.Sprintf("%s/v1/attest?nonce=nonce-%d-%d", base, c, seq), nil)
	case "notary":
		out.doc = doc
		if out.doc == nil {
			out.doc = make([]byte, 64+rng.Intn(448))
			rng.Read(out.doc)
		}
		url := base + "/v1/notary/sign"
		if shard != "" {
			url += "?shard=" + shard
		}
		req, err = http.NewRequest(http.MethodPost, url, bytes.NewReader(out.doc))
		if err == nil {
			req.Header.Set("Content-Type", "application/octet-stream")
		}
	default:
		return out, fmt.Errorf("unknown endpoint %q", ep)
	}
	if err != nil {
		return out, err
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	if token != "" {
		req.Header.Set(server.TenantHeader, token)
	}
	resp, err := client.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	out.body, err = io.ReadAll(resp.Body)
	if err != nil {
		return out, err
	}
	out.status = resp.StatusCode
	out.servedBy = resp.Header.Get("X-Komodo-Backend")
	out.tier = resp.Header.Get(server.TierHeader)
	out.reject = resp.Header.Get(server.RejectHeader)
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		out.retryAfter = true
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			out.retrySecs = secs
		}
	}
	return out, nil
}

// verifyAttest checks an attest response end to end: the nonce echo, the
// nonce→data derivation, and the quote itself against the provisioned key.
func verifyAttest(body []byte, quoteKey [8]uint32, wantNonce string) (bool, error) {
	var ar server.AttestResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		return false, err
	}
	if ar.Nonce != wantNonce {
		return false, fmt.Errorf("nonce echo %q != %q", ar.Nonce, wantNonce)
	}
	data, err := server.DecodeWords(ar.Data)
	if err != nil {
		return false, err
	}
	if data != server.NonceWords([]byte(wantNonce)) {
		return false, fmt.Errorf("data words are not SHA-256(nonce)")
	}
	meas, err := server.DecodeWords(ar.Measurement)
	if err != nil {
		return false, err
	}
	quote, err := server.DecodeWords(ar.Quote)
	if err != nil {
		return false, err
	}
	return kasm.VerifyQuote(quoteKey, meas, data, quote), nil
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("GET %s: %d %s", url, resp.StatusCode, b)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
