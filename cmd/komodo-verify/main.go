// komodo-verify runs the reproduction's verification suites and reports
// like a proof run: PageDB invariant preservation over random SMC traces
// (the paper's §5.2 obligations), refinement of the concrete monitor
// against the functional specification (the paper's implementation proof),
// the noninterference bisimulations (Theorem 6.1, confidentiality and
// integrity), and the batched-signing Merkle inclusion proofs
// (docs/BATCHING.md).
//
// With -receipt it instead verifies one saved batch receipt offline:
//
//	curl -s -d @doc.bin $URL/v1/notary/sign > receipt.json
//	komodo-verify -receipt receipt.json -doc doc.bin
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/batch"
	"repro/internal/board"
	"repro/internal/kapi"
	"repro/internal/kasm"
	"repro/internal/monitor"
	"repro/internal/ni"
	"repro/internal/nwos"
	"repro/internal/pagedb"
	"repro/internal/refine"
	"repro/internal/server"
	"repro/internal/sha2"
	"repro/internal/spec"
)

func main() {
	trials := flag.Int("trials", 25, "random trace trials per suite")
	steps := flag.Int("steps", 150, "SMCs per random trace")
	seed := flag.Int64("seed", 42, "PRNG seed for trace generation")
	receipt := flag.String("receipt", "", "verify one saved /v1/notary/sign batch receipt (JSON file) and exit")
	docFile := flag.String("doc", "", "with -receipt: the signed document, to also check the leaf binding")
	flag.Parse()

	if *receipt != "" {
		if err := verifyReceiptFile(*receipt, *docFile); err != nil {
			fmt.Fprintln(os.Stderr, "komodo-verify:", err)
			os.Exit(1)
		}
		return
	}

	total, failed := 0, 0
	report := func(name string, err error) {
		total++
		if err != nil {
			failed++
			fmt.Printf("  FAIL  %s: %v\n", name, err)
		} else {
			fmt.Printf("  ok    %s\n", name)
		}
	}

	fmt.Println("== PageDB invariants (spec-level, §5.2) ==")
	report("random SMC traces preserve Validate()", invariantTraces(*trials, *steps, *seed))

	fmt.Println("== Refinement (concrete monitor ⊑ specification) ==")
	report("random OS traces, checked per SMC", refinementTraces(*trials, *steps, *seed))
	report("enclave lifecycle, checked per SMC", refinementLifecycle(false))
	report("enclave lifecycle, optimised crossings (§8.1)", refinementLifecycle(true))

	fmt.Println("== Noninterference (Theorem 6.1) ==")
	report("confidentiality bisimulation (≈adv)", confidentiality())
	report("integrity bisimulation (≈enc)", integrity())

	fmt.Println("== Batch inclusion proofs (docs/BATCHING.md) ==")
	report("every leaf include-proves, tampering fails closed", inclusionProofs(*trials, *seed))
	report("coalesced receipts verify, nonce tamper fails closed", coalescedReceipts(*trials, *seed))

	fmt.Printf("\n%d checks, %d failures\n", total, failed)
	if failed > 0 {
		os.Exit(1)
	}
}

// verifyReceiptFile checks a saved batch receipt offline: the inclusion
// proof against the enclave-signed root and the digest binding of (root,
// counter); with a document file, the leaf recomputation too.
func verifyReceiptFile(path, docPath string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var nr server.NotaryResponse
	if err := json.Unmarshal(raw, &nr); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	var doc []byte
	if docPath != "" {
		if doc, err = os.ReadFile(docPath); err != nil {
			return err
		}
	}
	if err := server.VerifyBatchReceipt(nr, doc); err != nil {
		return fmt.Errorf("receipt %s: %w", path, err)
	}
	bound := "root+counter binding"
	if doc != nil {
		bound = "leaf, root+counter binding"
	}
	shared := ""
	if nr.Batch.Coalesced > 1 {
		shared = fmt.Sprintf(" (leaf shared by %d requests)", nr.Batch.Coalesced)
	}
	fmt.Printf("receipt ok: counter %d, leaf %d of %d%s, %s verified\n",
		nr.Counter, nr.Batch.LeafIndex, nr.Batch.BatchSize, shared, bound)
	return nil
}

// coalescedReceipts exercises the cross-request dedup receipt shape: a
// batch where several requests share one leaf (identical doc and tenant,
// the leaf owner's nonce folded into every waiter's receipt) must hand
// each waiter an offline-verifiable proof, and a receipt whose nonce is
// tampered — or swapped for another leaf's — must fail closed.
func coalescedReceipts(trials int, seed int64) error {
	rnd := rand.New(rand.NewSource(seed ^ 0x5eed))
	for trial := 0; trial < trials; trial++ {
		n := 2 + rnd.Intn(16)
		docs := make([][]byte, n)
		nonces := make([][batch.NonceSize]byte, n)
		waiters := make([]int, n)
		leaves := make([][8]uint32, n)
		for i := range leaves {
			docs[i] = []byte(fmt.Sprintf("trial %d doc %d", trial, i))
			rnd.Read(nonces[i][:])
			waiters[i] = 1 + rnd.Intn(4)
			h := sha2.New()
			h.Write(docs[i])
			leaves[i] = batch.LeafHash(h.SumWords(), "tenant", nonces[i][:])
		}
		root := batch.Root(leaves)
		counter := uint32(1 + trial)
		for i := range leaves {
			path := batch.Path(leaves, i)
			hexPath := make([]string, len(path))
			for j, p := range path {
				hexPath[j] = server.EncodeWords(p)
			}
			// Every waiter on the leaf gets the same proof with the
			// leaf's nonce — exactly what the server hands coalesced
			// requests.
			for w := 0; w < waiters[i]; w++ {
				nr := server.NotaryResponse{
					Counter: counter,
					Digest:  server.EncodeWords(batch.RootDigest(root, counter)),
					Batch: &server.BatchProof{
						Root:      server.EncodeWords(root),
						Leaf:      server.EncodeWords(leaves[i]),
						LeafIndex: i,
						BatchSize: n,
						Path:      hexPath,
						Tenant:    "tenant",
						Nonce:     fmt.Sprintf("%x", nonces[i][:]),
						Coalesced: waiters[i],
					},
				}
				if err := server.VerifyBatchReceipt(nr, docs[i]); err != nil {
					return fmt.Errorf("trial %d: waiter %d of leaf %d: %v", trial, w, i, err)
				}
				var bad [batch.NonceSize]byte
				copy(bad[:], nonces[i][:])
				bad[rnd.Intn(batch.NonceSize)] ^= 1 << uint(rnd.Intn(8))
				nr.Batch.Nonce = fmt.Sprintf("%x", bad[:])
				if server.VerifyBatchReceipt(nr, docs[i]) == nil {
					return fmt.Errorf("trial %d: leaf %d verified with tampered nonce", trial, i)
				}
				nr.Batch.Nonce = fmt.Sprintf("%x", nonces[(i+1)%n][:])
				if server.VerifyBatchReceipt(nr, docs[i]) == nil {
					return fmt.Errorf("trial %d: leaf %d verified with leaf %d's nonce", trial, i, (i+1)%n)
				}
			}
		}
	}
	return nil
}

// inclusionProofs exercises the Merkle machinery the way an auditor
// would: random trees of every small size, every leaf's audit path must
// verify against the root, and any single tampering — leaf bit, path
// bit, wrong index, wrong root — must fail closed.
func inclusionProofs(trials int, seed int64) error {
	rnd := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		n := 1 + rnd.Intn(64)
		leaves := make([][8]uint32, n)
		for i := range leaves {
			h := sha2.New()
			h.Write([]byte(fmt.Sprintf("trial %d leaf %d", trial, i)))
			var nonce [batch.NonceSize]byte
			rnd.Read(nonce[:])
			leaves[i] = batch.LeafHash(h.SumWords(), fmt.Sprintf("tenant-%d", i%3), nonce[:])
		}
		root := batch.Root(leaves)
		for i := range leaves {
			path := batch.Path(leaves, i)
			if !batch.VerifyInclusion(leaves[i], i, n, path, root) {
				return fmt.Errorf("trial %d: leaf %d/%d does not include-prove", trial, i, n)
			}
			// Tampering must fail closed.
			bad := leaves[i]
			bad[rnd.Intn(8)] ^= 1 << uint(rnd.Intn(32))
			if batch.VerifyInclusion(bad, i, n, path, root) {
				return fmt.Errorf("trial %d: tampered leaf %d verified", trial, i)
			}
			badRoot := root
			badRoot[rnd.Intn(8)] ^= 1 << uint(rnd.Intn(32))
			if batch.VerifyInclusion(leaves[i], i, n, path, badRoot) {
				return fmt.Errorf("trial %d: leaf %d verified against tampered root", trial, i)
			}
			if len(path) > 0 {
				badPath := append([][8]uint32(nil), path...)
				j := rnd.Intn(len(badPath))
				badPath[j][rnd.Intn(8)] ^= 1 << uint(rnd.Intn(32))
				if batch.VerifyInclusion(leaves[i], i, n, badPath, root) {
					return fmt.Errorf("trial %d: leaf %d verified with tampered path", trial, i)
				}
			}
			if wrong := (i + 1) % n; wrong != i {
				if batch.VerifyInclusion(leaves[i], wrong, n, path, root) {
					return fmt.Errorf("trial %d: leaf %d verified at wrong index %d", trial, i, wrong)
				}
			}
		}
	}
	return nil
}

func invariantTraces(trials, steps int, seed int64) error {
	p := spec.Params{
		NPages:       32,
		InsecureBase: 0x8000_0000,
		InsecureSize: 16 << 20,
		Rand:         func() uint32 { return 4 },
	}
	rnd := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		d := pagedb.New(p.NPages)
		for s := 0; s < steps; s++ {
			req := randomSMC(rnd, p)
			nd, _, _ := spec.ApplySMC(p, d, req)
			if err := nd.Validate(); err != nil {
				return fmt.Errorf("trial %d step %d (call %d): %w", trial, s, req.Call, err)
			}
			d = nd
		}
	}
	return nil
}

func randomSMC(rnd *rand.Rand, p spec.Params) spec.SMCRequest {
	calls := []uint32{
		kapi.SMCGetPhysPages, kapi.SMCInitAddrspace, kapi.SMCInitThread,
		kapi.SMCInitL2PTable, kapi.SMCAllocSpare, kapi.SMCMapSecure,
		kapi.SMCMapInsecure, kapi.SMCFinalise, kapi.SMCStop, kapi.SMCRemove,
	}
	req := spec.SMCRequest{Call: calls[rnd.Intn(len(calls))]}
	pg := func() uint32 { return uint32(rnd.Intn(p.NPages + 2)) }
	va := func() uint32 {
		return uint32(kapi.NewMapping(uint32(rnd.Intn(8))*0x1000, rnd.Intn(2) == 0, rnd.Intn(2) == 0))
	}
	insec := p.InsecureBase + uint32(rnd.Intn(16))*0x1000
	switch req.Call {
	case kapi.SMCInitAddrspace, kapi.SMCAllocSpare:
		req.Args = [4]uint32{pg(), pg()}
	case kapi.SMCInitThread:
		req.Args = [4]uint32{pg(), pg(), rnd.Uint32() % (1 << 30)}
	case kapi.SMCInitL2PTable:
		req.Args = [4]uint32{pg(), pg(), uint32(rnd.Intn(300))}
	case kapi.SMCMapSecure:
		var c [1024]uint32
		c[0] = rnd.Uint32()
		req.Contents = &c
		req.Args = [4]uint32{pg(), pg(), va(), insec}
	case kapi.SMCMapInsecure:
		req.Args = [4]uint32{pg(), va(), insec}
	default:
		req.Args = [4]uint32{pg()}
	}
	return req
}

func refinementTraces(trials, steps int, seed int64) error {
	rnd := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		plat, err := board.Boot(board.Config{Seed: uint64(trial + 1)})
		if err != nil {
			return err
		}
		chk := refine.New(plat.Monitor)
		os := nwos.New(plat.Machine, chk, plat.Monitor.NPages())
		p := plat.Monitor.SpecParams()
		for s := 0; s < steps; s++ {
			req := randomSMC(rnd, p)
			if req.Call == kapi.SMCMapSecure && req.Contents != nil {
				// Stage the random contents in the insecure source page
				// so the concrete monitor reads the same snapshot.
				if err := os.WriteInsecure(req.Args[3], req.Contents[:8]); err != nil {
					return err
				}
			}
			if _, _, err := chk.SMC(req.Call, req.Args[0], req.Args[1], req.Args[2], req.Args[3]); err != nil {
				return fmt.Errorf("trial %d step %d: %w", trial, s, err)
			}
		}
	}
	return nil
}

func refinementLifecycle(optimised bool) error {
	plat, err := board.Boot(board.Config{Seed: 9, Monitor: monitor.Config{Optimised: optimised}})
	if err != nil {
		return err
	}
	chk := refine.New(plat.Monitor)
	osm := nwos.New(plat.Machine, chk, plat.Monitor.NPages())
	for _, g := range []kasm.Guest{
		kasm.ExitConst(7), kasm.AddArgs(), kasm.StoreLoad(), kasm.GetRandom(),
		kasm.AttestOnce(), kasm.VerifyOnce(), kasm.DynAlloc(), kasm.DynUnmap(),
		kasm.Faulter(kasm.FaultWriteRO), kasm.Faulter(kasm.FaultUnmapped),
	} {
		img, err := g.Image()
		if err != nil {
			return err
		}
		enc, err := osm.BuildEnclave(img)
		if err != nil {
			return err
		}
		var args []uint32
		if len(enc.Spares) > 0 {
			args = []uint32{uint32(enc.Spares[0])}
		}
		if _, _, err := osm.Enter(enc, args...); err != nil {
			return err
		}
		if err := osm.Destroy(enc); err != nil {
			return err
		}
	}
	// Suspend/resume path.
	img, _ := kasm.CountTo().Image()
	enc, err := osm.BuildEnclave(img)
	if err != nil {
		return err
	}
	plat.Machine.ScheduleIRQ(500)
	if e, _, err := osm.Enter(enc, 1_000_000); err != nil || e != kapi.ErrInterrupted {
		return fmt.Errorf("suspend: %v %v", err, e)
	}
	if e, _, err := osm.Resume(enc); err != nil || e != kapi.ErrSuccess {
		return fmt.Errorf("resume: %v %v", err, e)
	}
	return nil
}

func confidentiality() error {
	pair, err := ni.NewPair(101, board.Config{})
	if err != nil {
		return err
	}
	vImg, _ := kasm.ComputeOnSecret().Image()
	victim, err := pair.BuildBoth(vImg)
	if err != nil {
		return err
	}
	cImg, _ := kasm.Colluder().Image()
	colluder, err := pair.BuildBoth(cImg)
	if err != nil {
		return err
	}
	secretPage := victim.Data[len(victim.Data)-1]
	if err := pair.PokeSecret(secretPage, 0x1111, 0x2222); err != nil {
		return err
	}
	steps := []struct {
		name string
		act  func(w *ni.World) ([]uint32, error)
	}{
		{"enter-victim", func(w *ni.World) ([]uint32, error) {
			e, v, err := w.OS.Enter(victim)
			return []uint32{uint32(e), v}, err
		}},
		{"enter-colluder", func(w *ni.World) ([]uint32, error) {
			e, v, err := w.OS.Enter(colluder)
			return []uint32{uint32(e), v}, err
		}},
		{"probe-remove", func(w *ni.World) ([]uint32, error) {
			e, v, err := w.Chk.SMC(kapi.SMCRemove, uint32(secretPage))
			return []uint32{uint32(e), v}, err
		}},
	}
	for _, s := range steps {
		if err := pair.Step(s.name, s.act); err != nil {
			return err
		}
		if err := pair.CheckAdv(colluder.AS); err != nil {
			return fmt.Errorf("after %s: %w", s.name, err)
		}
	}
	return nil
}

func integrity() error {
	pair, err := ni.NewPair(103, board.Config{})
	if err != nil {
		return err
	}
	tImg, _ := kasm.IntegrityVictim().Image()
	trusted, err := pair.BuildBoth(tImg)
	if err != nil {
		return err
	}
	uImg, _ := kasm.UntrustedReader().Image()
	untrusted, err := pair.BuildBoth(uImg)
	if err != nil {
		return err
	}
	pair.A.OS.WriteInsecure(untrusted.SharedPA[0], []uint32{0xaaaa})
	pair.B.OS.WriteInsecure(untrusted.SharedPA[0], []uint32{0xbbbb})
	for _, w := range []*ni.World{pair.A, pair.B} {
		if _, _, err := w.OS.Enter(untrusted); err != nil {
			return err
		}
	}
	if err := pair.CheckEnc(trusted.AS); err != nil {
		return err
	}
	for _, w := range []*ni.World{pair.A, pair.B} {
		if _, _, err := w.OS.Enter(trusted); err != nil {
			return err
		}
	}
	return pair.CheckEnc(trusted.AS)
}
