// komodo-serve runs the enclave serving layer: a warm pool of simulated
// Komodo boards behind an HTTP/JSON front end offering network
// attestation (/v1/attest?nonce=...), notary signing (/v1/notary/sign),
// health and stats. See docs/SERVING.md for the endpoint contract.
//
//	komodo-serve -addr 127.0.0.1:8787 -workers 4
//
// With -state-dir the notary counters become durable: every sign seals
// the notary enclave into a checkpoint appended to a crash-safe WAL in
// that directory, and a restarted server (same -seed, same directory)
// restores each worker's latest checkpoint at boot, so counters continue
// strictly past their last issued value. See docs/SEALING.md.
//
// SIGINT/SIGTERM drains gracefully: health checks start failing, in-flight
// requests finish, the pool shuts down, then the process exits 0.
//
// Observability (docs/OBSERVABILITY.md): /metrics serves Prometheus text
// exposition, /v1/debug/traces dumps the slowest request traces, SIGQUIT
// writes the same dump to stderr without stopping the server, and
// -pprof-addr exposes net/http/pprof on a separate listener.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/pool"
	"repro/internal/replay"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/tenant"
	"repro/komodo"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8787", "listen address (use :0 for a random port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
	workers := flag.Int("workers", 4, "pool size (simulated boards)")
	queue := flag.Int("queue", 64, "request queue depth (429 beyond this)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request worker-wait deadline")
	reuse := flag.Int("max-reuse", 0, "retire a worker after this many requests (0 = never)")
	seed := flag.Uint64("seed", 42, "board RNG seed (all workers share it: identical quote keys)")
	mode := flag.String("mode", "snapshot", "worker re-provisioning: snapshot | boot")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown budget")
	healthcheck := flag.Bool("healthcheck", false, "run a full attest probe after every restore")
	stateDir := flag.String("state-dir", "", "durable notary state directory (empty: counters are volatile)")
	ckptEvery := flag.Int("checkpoint-every", 1, "checkpoint the notary after every Nth sign (with -state-dir)")
	pprofAddr := flag.String("pprof-addr", "", "listen address for net/http/pprof (empty: disabled)")
	flightSize := flag.Int("flight-traces", 0, "slow-request traces retained for /v1/debug/traces (0 = default)")
	batchSize := flag.Int("batch", 0, "batched notary signing: close a batch at this many signs (0 = unbatched)")
	batchMin := flag.Int("batch-min", 0, "adaptive K: floor of the close threshold; K retunes between this and -batch (0 = fixed K)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "close a partial batch after this window (with -batch)")
	batchQueue := flag.Int("batch-queue", 0, "pending batch-sign waiters before 429 queue_full (0 = 4x batch size)")
	batchDedup := flag.Bool("batch-dedup", false, "coalesce identical (doc, tenant) signs within a batch onto one leaf")
	groupCommit := flag.Bool("group-commit", false, "coalesce concurrent checkpoint appends into one WAL write+fsync group (with -state-dir)")
	recordDir := flag.String("record-dir", "", "persist replayable traces of flight-retained requests here (empty: off; docs/REPLAY.md)")
	tiers := flag.String("tiers", "", "tenant tiers: name:rate:burst:quota[:shedat];... (empty: no admission control)")
	tenants := flag.String("tenants", "", "tenant tokens: token=tier,token=tier,... (with -tiers)")
	defaultTier := flag.String("default-tier", "", "tier for unknown/absent tokens (default: first in -tiers)")
	quotaWindow := flag.Duration("quota-window", 24*time.Hour, "daily-quota reset window (with -tiers)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "komodo-serve:", err)
		os.Exit(1)
	}

	var ckpts *server.CheckpointStore
	if *stateDir != "" {
		var sopts []store.Option
		if *groupCommit {
			sopts = append(sopts, store.WithGroupCommit())
		}
		var err error
		if ckpts, err = server.OpenCheckpointStore(*stateDir, sopts...); err != nil {
			fail(err)
		}
		defer ckpts.Close()
		if n := len(ckpts.Workers()); n > 0 {
			fmt.Printf("state dir %s: checkpoints for %d worker(s) recovered\n", *stateDir, n)
		}
	}

	if *recordDir != "" {
		if err := os.MkdirAll(*recordDir, 0o755); err != nil {
			fail(fmt.Errorf("record dir: %w", err))
		}
	}

	// The debug fleet tracks a freeze-the-world monitor attachment per
	// worker (SIGUSR1, /v1/debug/freeze, /v1/debug/mon). Installed from
	// the provision hook so a rebooted worker re-attaches automatically.
	fleet := replay.NewFleet()
	restore := server.RestoreProvision(ckpts)
	provision := func(id int, sys *komodo.System, state any) error {
		if err := restore(id, sys, state); err != nil {
			return err
		}
		fleet.Install(id, sys)
		return nil
	}

	pcfg := pool.Config{
		Size:      *workers,
		Boot:      server.Blueprint(*seed),
		MaxReuse:  *reuse,
		Provision: provision,
	}
	switch *mode {
	case "snapshot":
		pcfg.Mode = pool.ModeSnapshot
	case "boot":
		pcfg.Mode = pool.ModeBootEach
	default:
		fail(fmt.Errorf("unknown -mode %q (want snapshot or boot)", *mode))
	}
	if *healthcheck {
		pcfg.HealthCheck = server.HealthCheck
	}

	bootStart := time.Now()
	p, err := pool.New(pcfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("booted %d worker(s) in %v (%s mode)\n", *workers, time.Since(bootStart).Round(time.Millisecond), pcfg.Mode)

	var admission *tenant.Registry
	if *tiers != "" {
		specs, err := tenant.ParseTiers(*tiers)
		if err != nil {
			fail(fmt.Errorf("-tiers: %w", err))
		}
		tokens, err := tenant.ParseTenants(*tenants)
		if err != nil {
			fail(fmt.Errorf("-tenants: %w", err))
		}
		admission, err = tenant.NewRegistry(specs, tokens, *defaultTier, tenant.WithQuotaWindow(*quotaWindow))
		if err != nil {
			fail(fmt.Errorf("admission: %w", err))
		}
		fmt.Printf("admission: %d tier(s), %d token(s), default %q\n", len(specs), len(tokens), admission.DefaultTier())
	}
	if *batchSize > 0 {
		switch {
		case *batchMin > 0:
			fmt.Printf("batched signing: adaptive K in [%d,%d] window=%v dedup=%v\n", *batchMin, *batchSize, *batchWindow, *batchDedup)
		default:
			fmt.Printf("batched signing: K=%d window=%v dedup=%v\n", *batchSize, *batchWindow, *batchDedup)
		}
	}

	srv := server.New(server.Config{
		Pool:               p,
		QueueDepth:         *queue,
		RequestTimeout:     *timeout,
		Checkpoints:        ckpts,
		CheckpointEvery:    *ckptEvery,
		FlightRecorderSize: *flightSize,
		Admission:          admission,
		BatchMaxSize:       *batchSize,
		BatchMinSize:       *batchMin,
		BatchWindow:        *batchWindow,
		BatchQueue:         *batchQueue,
		BatchDedup:         *batchDedup,
		RecordDir:          *recordDir,
		Fleet:              fleet,
	})
	defer srv.Close()

	if *pprofAddr != "" {
		// pprof gets its own mux and listener so profiling is never
		// reachable through the serving address.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fail(fmt.Errorf("pprof listener: %w", err))
		}
		fmt.Printf("pprof on http://%s/debug/pprof/\n", pln.Addr())
		go http.Serve(pln, pm)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	bound := ln.Addr().String()
	fmt.Printf("listening on http://%s\n", bound)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fail(err)
		}
	}

	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	// SIGQUIT dumps the flight recorder to stderr and keeps serving —
	// the "why are requests slow right now" lever that needs no client.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			fmt.Fprintln(os.Stderr, "SIGQUIT: dumping slow-request traces")
			srv.FlightRecorder().WriteJSON(os.Stderr)
		}
	}()

	// SIGUSR1 freezes the world on each worker it can catch mid-enclave,
	// dumps registers and disassembly around PC to stderr, and resumes —
	// the no-client "what is this board executing right now" lever. An
	// idle worker (no enclave instruction stream to park) is reported and
	// skipped; served results are not perturbed.
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	go func() {
		for range usr1 {
			fmt.Fprintln(os.Stderr, "SIGUSR1: freeze-the-world worker dump")
			for _, id := range fleet.IDs() {
				e, err := fleet.Get(id)
				if err != nil {
					continue
				}
				if err := e.Fz.Freeze(200 * time.Millisecond); err != nil {
					fmt.Fprintf(os.Stderr, "worker %d: %v\n", id, err)
					continue
				}
				fmt.Fprintf(os.Stderr, "worker %d frozen:\n%s\n%s\n",
					id, e.Sess.Exec("regs"), e.Sess.Exec("dis"))
				if err := e.Fz.Resume(); err != nil {
					fmt.Fprintf(os.Stderr, "worker %d resume: %v\n", id, err)
				}
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("received %v, draining...\n", s)
	case err := <-errc:
		fail(err)
	}

	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fail(fmt.Errorf("http shutdown: %w", err))
	}
	if err := p.Close(ctx); err != nil {
		fail(fmt.Errorf("pool drain: %w", err))
	}
	ps := p.Stats()
	fmt.Printf("drained cleanly: %d requests served, %d boots, %d restores\n", ps.Gets, ps.Boots, ps.Restores)
}
