// komodo-loc reproduces the paper's Table 2: a line-count breakdown of the
// system by role (specification / implementation / proof-analog), printed
// next to the paper's published counts. Run from the module root, or pass
// -root.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/eval"
)

func main() {
	root := flag.String("root", ".", "module root to count")
	flag.Parse()

	rows, err := eval.CountLines(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "komodo-loc:", err)
		os.Exit(1)
	}
	fmt.Println("Line counts of this reproduction (non-blank, non-comment lines):")
	fmt.Printf("%-56s %8s %8s %8s %8s\n", "Component", "spec", "impl", "proof", "total")
	var ts, ti, tp int
	for _, r := range rows {
		fmt.Printf("%-56s %8d %8d %8d %8d\n", r.Component, r.Spec, r.Impl, r.Proof, r.Spec+r.Impl+r.Proof)
		ts += r.Spec
		ti += r.Impl
		tp += r.Proof
	}
	fmt.Printf("%-56s %8d %8d %8d %8d\n", "Total", ts, ti, tp, ts+ti+tp)

	fmt.Println("\nPaper's Table 2 (Dafny/Vale Komodo, for comparison):")
	fmt.Printf("%-56s %8s %8s %8s\n", "Component", "spec", "impl", "proof")
	var ps, pi, pp int
	for _, r := range eval.PaperTable2Rows() {
		fmt.Printf("%-56s %8d %8d %8d\n", r.Component, r.Spec, r.Impl, r.Proof)
		ps += r.Spec
		pi += r.Impl
		pp += r.Proof
	}
	fmt.Printf("%-56s %8d %8d %8d\n", "Total", ps, pi, pp)
	fmt.Println("\nRoles: spec = trusted models (machine model, PageDB, functional spec);")
	fmt.Println("impl = monitor, assembler, enclave programs; proof = refinement +")
	fmt.Println("noninterference harnesses and the entire test suite.")
}
