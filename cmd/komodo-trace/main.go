// komodo-trace renders captured request traces as aligned text timelines.
// Input is the JSON served by komodo-serve's /v1/debug/traces — either the
// full flight-recorder dump or a single trace — read from a file, stdin,
// or fetched live with -url.
//
//	komodo-trace -url http://127.0.0.1:8787            # slowest retained traces
//	komodo-trace -url http://127.0.0.1:8787 -id 0af7...c
//	curl -s $BASE/v1/debug/traces | komodo-trace -n 3
//
// Each timeline interleaves the two time domains of a trace (see
// docs/OBSERVABILITY.md): wall-clock spans show their duration, monitor
// spans show the simulated cycle count the telemetry recorder observed at
// the SMC boundary.
//
// With -replay <file.krec> (a trace recorded by komodo-serve -record-dir,
// docs/REPLAY.md) each smc: span is correlated with its boundary op in the
// replay trace and annotated with the replay cycle offset — the cycle to
// hand komodo-mon's "until cycle N" to land exactly there.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/kapi"
	"repro/internal/obs"
	"repro/internal/replay"
)

func main() {
	url := flag.String("url", "", "komodo-serve base URL to fetch /v1/debug/traces from")
	id := flag.String("id", "", "render only the trace with this 32-hex trace-id")
	file := flag.String("f", "", "read trace JSON from this file (default: stdin when -url is empty)")
	n := flag.Int("n", 0, "render at most the N slowest traces (0 = all)")
	replayPath := flag.String("replay", "", "replay trace (.krec): annotate smc: spans with replay cycle offsets")
	flag.Parse()

	var rt *replay.Trace
	if *replayPath != "" {
		var err error
		if rt, err = replay.Load(*replayPath); err != nil {
			fail(err)
		}
	}

	data, err := readInput(*url, *id, *file)
	if err != nil {
		fail(err)
	}
	traces, seen, err := parseTraces(data)
	if err != nil {
		fail(err)
	}
	if *id != "" {
		var keep []obs.TraceData
		for _, td := range traces {
			if td.TraceID == *id {
				keep = append(keep, td)
			}
		}
		traces = keep
	}
	if len(traces) == 0 {
		fail(fmt.Errorf("no traces in input"))
	}
	if *n > 0 && len(traces) > *n {
		traces = traces[:*n]
	}
	if seen > 0 {
		fmt.Printf("%d trace(s) rendered of %d retained, %d seen\n\n", len(traces), len(traces), seen)
	}
	for i, td := range traces {
		if i > 0 {
			fmt.Println()
		}
		render(os.Stdout, td, rt)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "komodo-trace:", err)
	os.Exit(1)
}

func readInput(url, id, file string) ([]byte, error) {
	switch {
	case url != "":
		u := strings.TrimRight(url, "/")
		if !strings.Contains(u, "/v1/debug/traces") {
			u += "/v1/debug/traces"
		}
		if id != "" {
			u += "?id=" + id
		}
		resp, err := http.Get(u)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %d %s", u, resp.StatusCode, strings.TrimSpace(string(body)))
		}
		return body, nil
	case file != "":
		return os.ReadFile(file)
	default:
		return io.ReadAll(os.Stdin)
	}
}

// parseTraces accepts either a flight-recorder dump envelope or a single
// trace object.
func parseTraces(data []byte) ([]obs.TraceData, uint64, error) {
	var dump obs.Dump
	if err := json.Unmarshal(data, &dump); err == nil && len(dump.Traces) > 0 {
		return dump.Traces, dump.Seen, nil
	}
	var td obs.TraceData
	if err := json.Unmarshal(data, &td); err == nil && td.TraceID != "" {
		return []obs.TraceData{td}, 0, nil
	}
	return nil, 0, fmt.Errorf("input is neither a trace dump nor a single trace")
}

func render(w io.Writer, td obs.TraceData, rt *replay.Trace) {
	fmt.Fprintf(w, "trace %s  endpoint=%s outcome=%s dur=%s",
		td.TraceID, td.Endpoint, td.Outcome, fmtDur(time.Duration(td.DurNS)))
	if td.ParentID != "" {
		fmt.Fprintf(w, " parent=%s", td.ParentID)
	}
	fmt.Fprintf(w, "\n      start %s  span %s\n", td.Start.Format(time.RFC3339Nano), td.SpanID)
	if td.Replay != "" {
		fmt.Fprintf(w, "      replay trace persisted at %s\n", td.Replay)
	}
	if rt != nil {
		match := ""
		if rt.Header.TraceID != td.TraceID {
			match = fmt.Sprintf(" (recorded for trace %s, correlation is positional)", rt.Header.TraceID)
		}
		fmt.Fprintf(w, "      replay: %d ops, %d end cycles%s\n", len(rt.Ops), rt.End.Cycles, match)
	}

	spans := append([]obs.Span(nil), td.Spans...)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartNS < spans[j].StartNS })

	nameW, costW := len("SPAN"), len("DURATION")
	rows := make([][3]string, len(spans))
	cursor := 0
	for i, sp := range spans {
		cost := fmtDur(time.Duration(sp.DurNS))
		if sp.Cycles > 0 {
			cost = fmt.Sprintf("%d cyc", sp.Cycles)
		}
		detail := sp.Detail
		if rt != nil && strings.HasPrefix(sp.Name, "smc:") {
			if op, idx := nextSMCOp(rt, &cursor, strings.TrimPrefix(sp.Name, "smc:")); op != nil {
				ann := fmt.Sprintf("replay@cycle=%d op=%d", op.EndCycles, idx)
				if detail != "" {
					detail += "  " + ann
				} else {
					detail = ann
				}
			}
		}
		rows[i] = [3]string{sp.Name, cost, detail}
		if len(sp.Name) > nameW {
			nameW = len(sp.Name)
		}
		if len(cost) > costW {
			costW = len(cost)
		}
	}
	fmt.Fprintf(w, "  %12s  %-*s  %*s  %s\n", "OFFSET", nameW, "SPAN", costW, "DURATION", "DETAIL")
	for i, sp := range spans {
		fmt.Fprintf(w, "  %12s  %-*s  %*s  %s\n",
			"+"+fmtDur(time.Duration(sp.StartNS)), nameW, rows[i][0], costW, rows[i][1], rows[i][2])
	}
}

// nextSMCOp finds the next SMC boundary op named call at or after *cursor,
// advancing the cursor past it. Timeline smc: spans and replay OpSMC ops
// are both in execution order, so this ordered scan pairs them up.
func nextSMCOp(rt *replay.Trace, cursor *int, call string) (*replay.Op, int) {
	for i := *cursor; i < len(rt.Ops); i++ {
		op := &rt.Ops[i]
		if op.Kind == replay.OpSMC && kapi.SMCName(op.Call) == call {
			*cursor = i + 1
			return op, i
		}
	}
	return nil, 0
}

// fmtDur renders a duration in fixed ms with µs precision, so every
// offset/duration column lines up.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
}
