// komodo-sim is a scenario runner for the simulated platform: it boots,
// builds one of the bundled enclave guests, executes it, and reports what
// the OS observes — optionally with refinement checking and interrupt
// injection. Useful for poking at the system interactively:
//
//	komodo-sim -guest notary -arg 64
//	komodo-sim -guest count -arg 100000 -irq-after 5000
//	komodo-sim -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/arm"
	"repro/internal/board"
	"repro/internal/cycles"
	"repro/internal/kapi"
	"repro/internal/kasm"
	"repro/internal/monitor"
	"repro/internal/nwos"
	"repro/internal/refine"
	"repro/internal/telemetry"
)

var guests = map[string]func() kasm.Guest{
	"exit42":    func() kasm.Guest { return kasm.ExitConst(42) },
	"add":       kasm.AddArgs,
	"count":     kasm.CountTo,
	"storeload": kasm.StoreLoad,
	"random":    kasm.GetRandom,
	"attest":    kasm.AttestOnce,
	"verify":    kasm.VerifyOnce,
	"dynalloc":  kasm.DynAlloc,
	"dynunmap":  kasm.DynUnmap,
	"echo":      kasm.SharedEcho,
	"hash":      func() kasm.Guest { return kasm.HashShared(4) },
	"notary":    func() kasm.Guest { return kasm.NotaryGuest(16) },
	"fault-ro":  func() kasm.Guest { return kasm.Faulter(kasm.FaultWriteRO) },
	"fault-nx":  func() kasm.Guest { return kasm.Faulter(kasm.FaultExecNX) },
	"fault-smc": func() kasm.Guest { return kasm.Faulter(kasm.FaultSMC) },
	"selfpager": kasm.SelfPager,
	"vault":     kasm.Vault,
	"quote":     kasm.QuotingEnclave,
	"mem":       kasm.MemGuest,
}

func main() {
	guest := flag.String("guest", "exit42", "bundled guest to run (see -list)")
	list := flag.Bool("list", false, "list bundled guests")
	seed := flag.Uint64("seed", 1, "hardware RNG seed")
	arg1 := flag.Uint("arg", 0, "first Enter argument")
	arg2 := flag.Uint("arg2", 0, "second Enter argument")
	arg3 := flag.Uint("arg3", 0, "third Enter argument")
	irqAfter := flag.Int64("irq-after", 0, "inject an IRQ after N enclave instructions (0 = never)")
	check := flag.Bool("check", true, "run with per-SMC refinement checking")
	static := flag.Bool("static", false, "boot the SGXv1-style static profile")
	trace := flag.Int("trace", 0, "print the first N executed enclave instructions")
	stats := flag.Bool("stats", false, "print a telemetry snapshot (JSON) after the run")
	events := flag.String("events", "", "write the telemetry event stream as JSONL to this file (- = stdout, moving all other output to stderr); summarise with komodo-stats")
	flag.Parse()

	if *list {
		names := make([]string, 0, len(guests))
		for n := range guests {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}
	mk, ok := guests[*guest]
	if !ok {
		fmt.Fprintf(os.Stderr, "komodo-sim: unknown guest %q (try -list)\n", *guest)
		os.Exit(2)
	}

	// With -events -, the JSONL stream owns stdout: every other line
	// (narration, trace, the -stats snapshot) moves to stderr so the
	// stream stays machine-parseable.
	out := io.Writer(os.Stdout)
	var rec *telemetry.Recorder
	var jsonl *telemetry.JSONLSink
	if *stats || *events != "" {
		rec = telemetry.New()
		if *events != "" {
			w := os.Stdout
			if *events == "-" {
				out = os.Stderr
			} else {
				f, err := os.Create(*events)
				die(err)
				defer f.Close()
				w = f
			}
			jsonl = telemetry.NewJSONLSink(w)
			rec.SetSink(jsonl)
		}
	}

	plat, err := board.Boot(board.Config{Seed: *seed, Monitor: monitor.Config{StaticProfile: *static}, Telemetry: rec})
	die(err)
	var drv nwos.Driver = plat.Monitor
	if *check {
		drv = refine.New(plat.Monitor)
	}
	osm := nwos.New(plat.Machine, drv, plat.Monitor.NPages())
	osm.SetTelemetry(rec)

	g := mk()
	img, err := g.Image()
	die(err)
	fmt.Fprintf(out, "booted: %d secure pages, protection=%v, refinement-checking=%v\n",
		plat.Monitor.NPages(), plat.Machine.Phys.Layout().Protection, *check)

	buildStart := plat.Machine.Cyc.Total()
	enc, err := osm.BuildEnclave(img)
	die(err)
	db, err := plat.Monitor.DecodePageDB()
	die(err)
	meas := db.Addrspace(enc.AS).Measured
	fmt.Fprintf(out, "built enclave %q: addrspace page %d, thread page %d, %d data pages (%d cycles)\n",
		*guest, enc.AS, enc.Thread, len(enc.Data), plat.Machine.Cyc.Total()-buildStart)
	fmt.Fprintf(out, "measurement: %08x%08x…%08x\n", meas[0], meas[1], meas[7])

	if *irqAfter > 0 {
		plat.Machine.ScheduleIRQ(*irqAfter)
	}
	if *trace > 0 {
		n := 0
		plat.Machine.TraceFn = func(pc uint32, i arm.Instr) {
			if n < *trace {
				fmt.Fprintf(out, "    %08x: %s\n", pc, i.Disasm())
			} else if n == *trace {
				fmt.Fprintln(out, "    ... (trace limit)")
			}
			n++
		}
	}
	args := []uint32{uint32(*arg1), uint32(*arg2), uint32(*arg3)}
	// Special case: the dynamic guests take their spare page as arg1.
	if len(enc.Spares) > 0 && *arg1 == 0 {
		args[0] = uint32(enc.Spares[0])
	}

	start := plat.Machine.Cyc.Total()
	e, v, err := osm.Enter(enc, args...)
	die(err)
	for e == kapi.ErrInterrupted {
		fmt.Fprintf(out, "  suspended by interrupt (exit type %d); resuming\n", v)
		if *irqAfter > 0 {
			plat.Machine.ScheduleIRQ(*irqAfter)
		}
		e, v, err = osm.Resume(enc)
		die(err)
	}
	cyc := plat.Machine.Cyc.Total() - start
	switch e {
	case kapi.ErrSuccess:
		fmt.Fprintf(out, "enclave exited: value=%d (%#x)\n", v, v)
	case kapi.ErrFault:
		fmt.Fprintf(out, "enclave faulted: exception type %d (no other information released)\n", v)
	default:
		fmt.Fprintf(out, "monitor returned %v (value %d)\n", e, v)
	}
	fmt.Fprintf(out, "execution: %d simulated cycles (%.3f ms at 900 MHz), %d instructions retired\n",
		cyc, cycles.Millis(cyc), plat.Machine.Retired())
	die(osm.Destroy(enc))
	fmt.Fprintln(out, "enclave destroyed; all pages scrubbed and reclaimed")

	if *stats {
		js, err := plat.StatsSnapshot().MarshalIndent()
		die(err)
		fmt.Fprintln(out, string(js))
	}
	if jsonl != nil {
		die(jsonl.Err())
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "komodo-sim:", err)
		os.Exit(1)
	}
}
