// komodo-mon is the machine monitor for simulated Komodo boards: an
// interactive freeze-the-world debugger that works offline over a recorded
// replay trace (docs/REPLAY.md) or live against a komodo-serve pool worker.
//
// Offline, over a trace recorded with komodo-serve -record-dir:
//
//	komodo-mon -f trace.krec              # REPL over the replayed run
//	komodo-mon -f trace.krec -check       # replay, verify, exit 1 on divergence
//	komodo-mon -f trace.krec -cmd "regs; dis; step 5; finish"
//
// Live, against a serving process:
//
//	komodo-mon -connect http://127.0.0.1:8787 -worker 0
//
// In live mode each command line is sent to /v1/debug/mon?worker=N; the
// command language is identical (type "help"). Offline mode starts with
// the machine frozen at the first replayed instruction; "finish" runs the
// remaining trace and reports whether the replay matched the recording.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/replay"
)

func main() {
	tracePath := flag.String("f", "", "replay trace file (.krec) for offline mode")
	check := flag.Bool("check", false, "replay the trace non-interactively; exit 1 on divergence")
	cmds := flag.String("cmd", "", "run these ';'-separated commands instead of a REPL")
	connect := flag.String("connect", "", "komodo-serve base URL for live mode (e.g. http://127.0.0.1:8787)")
	worker := flag.Int("worker", 0, "worker id for live mode")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "komodo-mon:", err)
		os.Exit(1)
	}

	switch {
	case *connect != "":
		if err := liveMode(*connect, *worker, *cmds); err != nil {
			fail(err)
		}
	case *tracePath != "":
		if err := offlineMode(*tracePath, *check, *cmds); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("need -f <trace.krec> (offline) or -connect <url> (live)"))
	}
}

// offlineMode replays a trace under the monitor.
func offlineMode(path string, check bool, cmds string) error {
	t, err := replay.Load(path)
	if err != nil {
		return err
	}
	fmt.Printf("trace %s: %s on %q, %d ops, seed %d\n",
		path, t.Header.TraceID, t.Header.Endpoint, len(t.Ops), t.Header.Boot.Seed)

	if check {
		res, err := replay.Replay(t)
		if err != nil {
			return err
		}
		fmt.Print(replay.RenderResult(res))
		if !res.OK() {
			os.Exit(1)
		}
		return nil
	}

	nav, err := replay.StartNavigator(t)
	if err != nil {
		return err
	}
	sess := nav.Session()
	runner := func(line string) (string, bool) {
		return sess.Exec(line), false
	}
	if err := driveCommands(cmds, runner); err != nil {
		return err
	}
	// Whatever the user did, let the replay run out and report, so a
	// monitor session always ends with a verdict.
	if sess.Fz.Frozen() {
		fmt.Println(sess.Exec("finish"))
	} else if res, ok := nav.Wait(30 * time.Second); ok {
		fmt.Print(replay.RenderResult(res))
		if !res.OK() {
			os.Exit(1)
		}
	}
	return nil
}

// liveMode proxies each command line to a serving process.
func liveMode(base string, worker int, cmds string) error {
	endpoint := strings.TrimSuffix(base, "/") + "/v1/debug/mon?worker=" + fmt.Sprint(worker)
	runner := func(line string) (string, bool) {
		resp, err := http.Post(endpoint, "text/plain", strings.NewReader(line))
		if err != nil {
			return "error: " + err.Error(), false
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return strings.TrimRight(string(body), "\n"), false
	}
	// Probe the connection (and print where we are) before the REPL.
	out, _ := runner("status")
	fmt.Println(out)
	return driveCommands(cmds, runner)
}

// driveCommands feeds either the -cmd script or interactive stdin lines to
// runner. runner's second return requests exit.
func driveCommands(cmds string, runner func(string) (string, bool)) error {
	if cmds != "" {
		for _, c := range strings.Split(cmds, ";") {
			c = strings.TrimSpace(c)
			if c == "" {
				continue
			}
			fmt.Printf("(mon) %s\n", c)
			out, quit := runner(c)
			if out != "" {
				fmt.Println(out)
			}
			if quit {
				break
			}
		}
		return nil
	}
	fmt.Println(`machine monitor — "help" for commands, "quit" to exit`)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("(mon) ")
		if !sc.Scan() {
			fmt.Println()
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "quit" || line == "exit" || line == "q" {
			return nil
		}
		if line == "" {
			continue
		}
		out, quit := runner(line)
		if out != "" {
			fmt.Println(out)
		}
		if quit {
			return nil
		}
	}
}
