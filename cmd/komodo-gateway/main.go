// komodo-gateway fronts a fleet of komodo-serve backends: it
// consistent-hash-routes notary signing by counter shard, spreads
// stateless attestation round-robin, health-checks every backend with
// jittered probes, fails over routing when a backend dies, merges
// fleet-wide stats and telemetry at /v1/stats, and live-migrates sealed
// notary state between backends on demand. See docs/GATEWAY.md.
//
//	komodo-gateway -addr 127.0.0.1:9090 \
//	    -backends a=http://127.0.0.1:8787,b=http://127.0.0.1:8788
//
// Live migration (move backend a's shards and sealed counters onto b):
//
//	curl -X POST 'http://127.0.0.1:9090/v1/admin/migrate?from=a&to=b&drain=1'
//
// SIGINT/SIGTERM drains gracefully: /v1/healthz starts failing, new
// requests are refused with a retryable 503, in-flight proxies finish,
// then the process exits 0. SIGQUIT dumps the slowest proxied traces to
// stderr without stopping.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "listen address (use :0 for a random port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
	backends := flag.String("backends", "", "comma-separated backends, each name=url or bare url (required)")
	vnodes := flag.Int("vnodes", 0, "ring points per backend (0 = default 64)")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "mean health-probe period per backend (jittered ±25%)")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "per-probe deadline")
	downAfter := flag.Int("down-after", 2, "consecutive probe failures before a backend is demoted")
	upAfter := flag.Int("up-after", 2, "consecutive probe successes before a down backend is promoted")
	reqTimeout := flag.Duration("timeout", 60*time.Second, "end-to-end deadline per proxied request")
	maxInFlight := flag.Int("max-in-flight", 256, "concurrent proxied requests before shedding with 429")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown budget")
	flightSize := flag.Int("flight-traces", 0, "slow-request traces retained for /v1/debug/traces (0 = default)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "komodo-gateway:", err)
		os.Exit(1)
	}

	specs, err := parseBackends(*backends)
	if err != nil {
		fail(err)
	}

	g, err := gateway.New(gateway.Config{
		Backends:           specs,
		VNodes:             *vnodes,
		ProbeInterval:      *probeInterval,
		ProbeTimeout:       *probeTimeout,
		DownAfter:          *downAfter,
		UpAfter:            *upAfter,
		RequestTimeout:     *reqTimeout,
		MaxInFlight:        *maxInFlight,
		FlightRecorderSize: *flightSize,
	})
	if err != nil {
		fail(err)
	}
	defer g.Close()
	for _, s := range specs {
		fmt.Printf("backend %s -> %s\n", s.Name, s.URL)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	bound := ln.Addr().String()
	fmt.Printf("gateway listening on http://%s (%d backends)\n", bound, len(specs))
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fail(err)
		}
	}

	hs := &http.Server{Handler: g}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			fmt.Fprintln(os.Stderr, "SIGQUIT: dumping slow proxied traces")
			g.FlightRecorder().WriteJSON(os.Stderr)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("received %v, draining...\n", s)
	case err := <-errc:
		fail(err)
	}

	g.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fail(fmt.Errorf("http shutdown: %w", err))
	}
	st := g.Stats().Gateway
	fmt.Printf("drained cleanly: %d requests proxied, %d failovers, %d migrations\n",
		st.Proxied, st.Failovers, st.Migrations)
}

// parseBackends parses "name=url,name=url" (bare URLs get positional
// names b0, b1, ...).
func parseBackends(s string) ([]gateway.BackendSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-backends is required (name=url,name=url)")
	}
	var specs []gateway.BackendSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url := "", part
		if i := strings.Index(part, "="); i > 0 && !strings.Contains(part[:i], "/") {
			name, url = part[:i], part[i+1:]
		}
		if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
			url = "http://" + url
		}
		specs = append(specs, gateway.BackendSpec{Name: name, URL: url})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("-backends parsed to zero entries")
	}
	return specs, nil
}
