// komodo-stats summarises telemetry in either of its two wire forms:
//
//   - an event stream produced by komodo-sim -events (or any
//     telemetry.JSONLSink): one JSON object per line, aggregated into
//     per-call counts, error rates, and cycle totals by event kind;
//   - a fleet-merged snapshot (telemetry.Merge output): a single JSON
//     document, as served inline by komodo-serve's /v1/stats. Both the
//     bare snapshot and the full /v1/stats response are accepted.
//
// The input form is sniffed: if the whole input parses as one JSON
// document it is treated as a snapshot, otherwise as JSONL.
//
//	komodo-sim -guest notary -events events.jsonl
//	komodo-stats events.jsonl
//	komodo-sim -guest count -arg 100000 -events - | komodo-stats
//	curl -s http://127.0.0.1:8787/v1/stats | komodo-stats
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/telemetry"
)

// line mirrors telemetry's JSONL wire form (sink.go jsonEvent).
type line struct {
	Seq    uint64    `json:"seq"`
	Kind   string    `json:"kind"`
	Call   uint32    `json:"call"`
	Name   string    `json:"name"`
	Args   [4]uint32 `json:"args"`
	Err    uint32    `json:"err"`
	Val    uint32    `json:"val"`
	Cycles uint64    `json:"cycles"`
}

type agg struct {
	count  uint64
	errors uint64
	cycles uint64
}

func main() {
	var r io.Reader = os.Stdin
	if len(os.Args) > 1 && os.Args[1] != "-" {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "komodo-stats:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	input, err := io.ReadAll(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "komodo-stats:", err)
		os.Exit(1)
	}
	if snap, ok := sniffSnapshot(input); ok {
		printSnapshot(snap)
		return
	}
	summariseJSONL(input)
}

// sniffSnapshot reports whether the input is one merged-snapshot JSON
// document rather than a JSONL event stream. Event lines also start
// with '{' but carry a "kind" discriminator and never a "cycles"/"smc"
// aggregate, and a multi-line stream is not a single valid document.
func sniffSnapshot(input []byte) (telemetry.Snapshot, bool) {
	var snap telemetry.Snapshot
	trimmed := bytes.TrimSpace(input)
	if len(trimmed) == 0 || trimmed[0] != '{' {
		return snap, false
	}
	var probe struct {
		Kind      *string             `json:"kind"`
		Cycles    *uint64             `json:"cycles"`
		SMC       json.RawMessage     `json:"smc"`
		Telemetry *telemetry.Snapshot `json:"telemetry"`
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	if dec.Decode(&probe) != nil || dec.More() {
		return snap, false // not a single document: JSONL
	}
	if probe.Telemetry != nil {
		// A full /v1/stats response: use its embedded merged snapshot.
		return *probe.Telemetry, true
	}
	if probe.Kind != nil || (probe.Cycles == nil && probe.SMC == nil) {
		return snap, false // a lone event line, or something else
	}
	if json.Unmarshal(trimmed, &snap) != nil {
		return snap, false
	}
	return snap, true
}

// printSnapshot renders a merged telemetry.Snapshot.
func printSnapshot(s telemetry.Snapshot) {
	fmt.Printf("merged snapshot: %d cycles, %d instructions retired\n", s.Cycles, s.Retired)
	series := func(kind string, calls []telemetry.CallStats) {
		if len(calls) == 0 {
			return
		}
		sort.Slice(calls, func(i, j int) bool {
			if calls[i].Count != calls[j].Count {
				return calls[i].Count > calls[j].Count
			}
			return calls[i].Name < calls[j].Name
		})
		fmt.Printf("\n%s:\n", kind)
		for _, c := range calls {
			fmt.Printf("  %-24s %8d", c.Name, c.Count)
			if c.Errors > 0 {
				fmt.Printf("  errors=%d", c.Errors)
			}
			if c.Cycles > 0 {
				fmt.Printf("  cycles=%d (mean %d)", c.Cycles, c.Mean())
			}
			fmt.Println()
		}
	}
	series("smc", s.SMC)
	series("svc", s.SVC)
	counts := func(kind string, m map[string]uint64) {
		if len(m) == 0 {
			return
		}
		names := make([]string, 0, len(m))
		for n := range m {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("\n%s:\n", kind)
		for _, n := range names {
			fmt.Printf("  %-24s %8d\n", n, m[n])
		}
	}
	counts("lifecycle", s.Lifecycle)
	counts("page moves", s.PageMoves)
	if s.TLB.Hits+s.TLB.Misses > 0 {
		fmt.Printf("\ntlb: %d hits, %d misses, %d flushes\n", s.TLB.Hits, s.TLB.Misses, s.TLB.Flushes)
	}
}

// summariseJSONL aggregates a telemetry event stream line by line.
func summariseJSONL(input []byte) {
	r := bytes.NewReader(input)
	perKind := map[string]map[string]*agg{}
	var total, badLines int
	var firstSeq, lastSeq uint64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e line
		if err := json.Unmarshal(raw, &e); err != nil {
			badLines++
			continue
		}
		if total == 0 {
			firstSeq = e.Seq
		}
		lastSeq = e.Seq
		total++
		byName := perKind[e.Kind]
		if byName == nil {
			byName = map[string]*agg{}
			perKind[e.Kind] = byName
		}
		name := e.Name
		if name == "" {
			name = fmt.Sprintf("call-%d", e.Call)
		}
		a := byName[name]
		if a == nil {
			a = &agg{}
			byName[name] = a
		}
		a.count++
		a.cycles += e.Cycles
		if e.Kind == "smc" || e.Kind == "svc" {
			// Err 0 is KOM_ERR_SUCCESS; 4 (KOM_ERR_INTERRUPTED) is a
			// normal suspend, not a failure.
			if e.Err != 0 && e.Err != 4 {
				a.errors++
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "komodo-stats:", err)
		os.Exit(1)
	}

	fmt.Printf("%d events (seq %d..%d)", total, firstSeq, lastSeq)
	if badLines > 0 {
		fmt.Printf(", %d unparseable lines skipped", badLines)
	}
	fmt.Println()

	kinds := make([]string, 0, len(perKind))
	for k := range perKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		byName := perKind[kind]
		names := make([]string, 0, len(byName))
		for n := range byName {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool {
			if byName[names[i]].count != byName[names[j]].count {
				return byName[names[i]].count > byName[names[j]].count
			}
			return names[i] < names[j]
		})
		fmt.Printf("\n%s:\n", kind)
		for _, n := range names {
			a := byName[n]
			fmt.Printf("  %-24s %8d", n, a.count)
			if a.errors > 0 {
				fmt.Printf("  errors=%d", a.errors)
			}
			if a.cycles > 0 {
				fmt.Printf("  cycles=%d (mean %d)", a.cycles, a.cycles/a.count)
			}
			fmt.Println()
		}
	}
}
