// komodo-stats summarises a telemetry event stream produced by
// komodo-sim -events (or any telemetry.JSONLSink): one JSON object per
// line. It aggregates the stream into per-call counts, error rates, and
// cycle totals, grouped by event kind — a quick way to see what a run
// did without replaying it.
//
//	komodo-sim -guest notary -events events.jsonl
//	komodo-stats events.jsonl
//	komodo-sim -guest count -arg 100000 -events - | komodo-stats
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// line mirrors telemetry's JSONL wire form (sink.go jsonEvent).
type line struct {
	Seq    uint64    `json:"seq"`
	Kind   string    `json:"kind"`
	Call   uint32    `json:"call"`
	Name   string    `json:"name"`
	Args   [4]uint32 `json:"args"`
	Err    uint32    `json:"err"`
	Val    uint32    `json:"val"`
	Cycles uint64    `json:"cycles"`
}

type agg struct {
	count  uint64
	errors uint64
	cycles uint64
}

func main() {
	var r io.Reader = os.Stdin
	if len(os.Args) > 1 && os.Args[1] != "-" {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "komodo-stats:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}

	perKind := map[string]map[string]*agg{}
	var total, badLines int
	var firstSeq, lastSeq uint64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e line
		if err := json.Unmarshal(raw, &e); err != nil {
			badLines++
			continue
		}
		if total == 0 {
			firstSeq = e.Seq
		}
		lastSeq = e.Seq
		total++
		byName := perKind[e.Kind]
		if byName == nil {
			byName = map[string]*agg{}
			perKind[e.Kind] = byName
		}
		name := e.Name
		if name == "" {
			name = fmt.Sprintf("call-%d", e.Call)
		}
		a := byName[name]
		if a == nil {
			a = &agg{}
			byName[name] = a
		}
		a.count++
		a.cycles += e.Cycles
		if e.Kind == "smc" || e.Kind == "svc" {
			// Err 0 is KOM_ERR_SUCCESS; 4 (KOM_ERR_INTERRUPTED) is a
			// normal suspend, not a failure.
			if e.Err != 0 && e.Err != 4 {
				a.errors++
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "komodo-stats:", err)
		os.Exit(1)
	}

	fmt.Printf("%d events (seq %d..%d)", total, firstSeq, lastSeq)
	if badLines > 0 {
		fmt.Printf(", %d unparseable lines skipped", badLines)
	}
	fmt.Println()

	kinds := make([]string, 0, len(perKind))
	for k := range perKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		byName := perKind[kind]
		names := make([]string, 0, len(byName))
		for n := range byName {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool {
			if byName[names[i]].count != byName[names[j]].count {
				return byName[names[i]].count > byName[names[j]].count
			}
			return names[i] < names[j]
		})
		fmt.Printf("\n%s:\n", kind)
		for _, n := range names {
			a := byName[n]
			fmt.Printf("  %-24s %8d", n, a.count)
			if a.errors > 0 {
				fmt.Printf("  errors=%d", a.errors)
			}
			if a.cycles > 0 {
				fmt.Printf("  cycles=%d (mean %d)", a.cycles, a.cycles/a.count)
			}
			fmt.Println()
		}
	}
}
