// komodo-ckpt manipulates sealed enclave checkpoints (docs/SEALING.md):
//
//	komodo-ckpt inspect ckpt.json           # cleartext header + manifest
//	komodo-ckpt verify -seed 42 ckpt.json   # restore onto a scratch board
//	komodo-ckpt pull -url http://host:8787 -out ckpt.json
//	komodo-ckpt push -url http://host:8787 ckpt.json
//
// inspect and verify are offline. verify boots a throwaway board with
// the given seed and attempts a real monitor-mediated restore: it
// succeeds exactly when the blob is untampered and the seed derives the
// same measurement-bound sealing key — the same check a production
// restore performs. pull checkpoints a live server's notary and saves
// the portable JSON; push restores one onto a live server.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"repro/internal/seal"
	"repro/internal/server"
	"repro/komodo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "pull":
		err = cmdPull(os.Args[2:])
	case "push":
		err = cmdPush(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "komodo-ckpt:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: komodo-ckpt inspect|verify|pull|push [flags] [file]")
	os.Exit(2)
}

func load(path string) (*komodo.Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return komodo.UnmarshalCheckpoint(data)
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("inspect: need at least one checkpoint file")
	}
	for _, path := range fs.Args() {
		ckpt, err := load(path)
		if err != nil {
			return err
		}
		h, err := seal.ParseHeader(ckpt.Blob)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		man := ckpt.Manifest
		fmt.Printf("%s:\n", path)
		fmt.Printf("  sealed blob     %d words (payload %d + overhead %d)\n",
			len(ckpt.Blob), h.PayloadLen, seal.OverheadWords)
		fmt.Printf("  version/kind    %d / %d\n", h.Version, h.Kind)
		fmt.Printf("  measurement     %s\n", wordsHex(h.Measurement[:]))
		fmt.Printf("  nonce           %08x%08x\n", h.Nonce[0], h.Nonce[1])
		fmt.Printf("  pages           %d (threads %d, l2 tables %d, data %d, spares %d)\n",
			man.NumPages, len(man.Threads), len(man.L2), len(man.Data), len(man.Spares))
		if len(man.SharedPA) > 0 {
			fmt.Printf("  shared regions  %d\n", len(man.SharedPA))
		}
	}
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	seed := fs.Uint64("seed", 42, "boot secret seed of the board to restore onto")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("verify: need exactly one checkpoint file")
	}
	ckpt, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	sys, err := komodo.New(komodo.WithSeed(*seed))
	if err != nil {
		return err
	}
	if _, err := sys.RestoreEnclave(ckpt); err != nil {
		return fmt.Errorf("REJECTED: %w", err)
	}
	fmt.Printf("OK: restores under seed %d (%d sealed words, %d pages)\n",
		*seed, len(ckpt.Blob), ckpt.Manifest.NumPages)
	return nil
}

func cmdPull(args []string) error {
	fs := flag.NewFlagSet("pull", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:8787", "komodo-serve base URL")
	out := fs.String("out", "", "output file (default stdout)")
	fs.Parse(args)
	resp, err := http.Post(strings.TrimRight(*url, "/")+"/v1/checkpoint", "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: %d %s", resp.StatusCode, body)
	}
	var cr server.CheckpointResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		return err
	}
	if *out == "" {
		fmt.Println(cr.Checkpoint)
		return nil
	}
	if err := os.WriteFile(*out, []byte(cr.Checkpoint), 0o644); err != nil {
		return err
	}
	fmt.Printf("pulled worker %d checkpoint (counter %d, %d words) to %s\n",
		cr.Worker, cr.Counter, cr.BlobWords, *out)
	return nil
}

func cmdPush(args []string) error {
	fs := flag.NewFlagSet("push", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:8787", "komodo-serve base URL")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("push: need exactly one checkpoint file")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	resp, err := http.Post(strings.TrimRight(*url, "/")+"/v1/restore", "application/json",
		bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server rejected restore: %d %s", resp.StatusCode, body)
	}
	var rr server.RestoreResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		return err
	}
	fmt.Printf("restored onto worker %d (%d sealed words)\n", rr.Worker, rr.BlobWords)
	return nil
}

func wordsHex(ws []uint32) string {
	var b strings.Builder
	for _, w := range ws {
		fmt.Fprintf(&b, "%08x", w)
	}
	return b.String()
}
