// komodo-bench regenerates the paper's evaluation: Table 3, the §8.1 SGX
// comparison, Figure 5, and the Table 2 line-count breakdown. With no
// flags it prints everything; -json emits the selected sections as one
// machine-readable object (the schema komodo-load result tracking and
// BENCH_*.json diffing consume).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/eval"
)

// output is the -json schema: each requested section, keyed by name.
type output struct {
	Table3      []eval.Table3Row    `json:"table3,omitempty"`
	Ablation    []eval.AblationRow  `json:"ablation,omitempty"`
	SGX         []eval.SGXRow       `json:"sgx,omitempty"`
	Figure5     []eval.Fig5Point    `json:"figure5,omitempty"`
	Table2      []eval.LocRow       `json:"table2,omitempty"`
	PaperTable2 []eval.PaperRow     `json:"paper_table2,omitempty"`
	Perf        *eval.PerfReport    `json:"perf,omitempty"`
	Batch       []eval.BatchRow     `json:"batch,omitempty"`
	WritePath   []eval.WritePathRow `json:"writepath,omitempty"`
}

func main() {
	t3 := flag.Bool("table3", false, "print only the Table 3 microbenchmarks")
	sgxOnly := flag.Bool("sgx", false, "print only the SGX crossing comparison (§8.1)")
	f5 := flag.Bool("figure5", false, "print only the Figure 5 notary series")
	t2 := flag.Bool("table2", false, "print only the Table 2 line-count breakdown")
	abl := flag.Bool("ablation", false, "print only the crossing-optimisation ablation")
	perf := flag.Bool("perf", false, "print only the host hot-path performance section (docs/PERFORMANCE.md)")
	perfReqs := flag.Int("perf-requests", 200, "notary requests the -perf section serves")
	batchAB := flag.Bool("batch", false, "print only the batched-signing A/B (docs/BATCHING.md)")
	batchReqs := flag.Int("batch-requests", 2000, "signs per configuration in the -batch section")
	batchClients := flag.Int("batch-clients", 16, "closed-loop clients in the -batch section")
	wp := flag.Bool("writepath", false, "print only the adaptive write-path sweep (docs/BATCHING.md §Adaptive write path)")
	wpReqs := flag.Int("writepath-requests", 1536, "signs per cell in the -writepath sweep")
	asJSON := flag.Bool("json", false, "emit the selected sections as JSON")
	root := flag.String("root", ".", "module root for the line-count breakdown")
	flag.Parse()
	all := !*t3 && !*sgxOnly && !*f5 && !*t2 && !*abl && !*perf && !*batchAB && !*wp

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "komodo-bench:", err)
		os.Exit(1)
	}

	var out output
	if all || *t3 {
		rows, err := eval.Table3()
		if err != nil {
			fail(err)
		}
		out.Table3 = rows
	}
	if all || *abl {
		rows, err := eval.Ablation()
		if err != nil {
			fail(err)
		}
		out.Ablation = rows
	}
	if all || *sgxOnly {
		rows, err := eval.SGXComparison()
		if err != nil {
			fail(err)
		}
		out.SGX = rows
	}
	if all || *f5 {
		pts, err := eval.Figure5(eval.Figure5Sizes)
		if err != nil {
			fail(err)
		}
		out.Figure5 = pts
	}
	if all || *t2 {
		rows, err := eval.CountLines(*root)
		if err != nil {
			fail(err)
		}
		out.Table2 = rows
		out.PaperTable2 = eval.PaperTable2Rows()
	}
	if all || *perf {
		r, err := eval.Perf(*perfReqs)
		if err != nil {
			fail(err)
		}
		out.Perf = r
	}
	if all || *batchAB {
		rows, err := eval.BatchAB(*batchReqs, *batchClients, []int{8, 16, 32})
		if err != nil {
			fail(err)
		}
		out.Batch = rows
	}
	if all || *wp {
		rows, err := eval.WritePathSweep(*wpReqs)
		if err != nil {
			fail(err)
		}
		out.WritePath = rows
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail(err)
		}
		return
	}

	if out.Table3 != nil {
		fmt.Println("Table 3: Microbenchmark results (simulated cycles vs. paper's Raspberry Pi 2)")
		fmt.Printf("  %-14s %-42s %10s %10s\n", "Operation", "Notes", "cycles", "paper")
		for _, r := range out.Table3 {
			fmt.Printf("  %-14s %-42s %10d %10d\n", r.Operation, r.Notes, r.Cycles, r.PaperCycles)
		}
		fmt.Println()
	}
	if out.Ablation != nil {
		fmt.Println("Ablation: §8.1 crossing optimisations (cycles per full crossing)")
		fmt.Printf("  %-46s %10s %10s\n", "Configuration", "cold", "hot")
		for _, r := range out.Ablation {
			fmt.Printf("  %-46s %10d %10d\n", r.Config, r.FirstCrossing, r.RepeatCrossing)
		}
		fmt.Println()
	}
	if out.SGX != nil {
		fmt.Println("SGX comparison (§8.1): enclave crossing latency")
		fmt.Printf("  %-18s %12s %12s %8s\n", "Operation", "Komodo", "SGX model", "ratio")
		for _, r := range out.SGX {
			fmt.Printf("  %-18s %12d %12d %7.1fx\n", r.Operation, r.Komodo, r.SGX, float64(r.SGX)/float64(r.Komodo))
		}
		fmt.Println()
	}
	if out.Figure5 != nil {
		fmt.Println("Figure 5: Notary performance (time to notarise vs. input size, 900 MHz clock)")
		fmt.Printf("  %8s %14s %14s %8s\n", "size", "enclave (ms)", "native (ms)", "ratio")
		for _, p := range out.Figure5 {
			fmt.Printf("  %6dkB %14.3f %14.3f %8.3f\n", p.KB, p.EnclaveMS, p.NativeMS, p.EnclaveMS/p.NativeMS)
		}
		fmt.Println()
	}
	if out.Perf != nil {
		p := out.Perf
		fmt.Println("Hot-path performance (host wall-clock; see docs/PERFORMANCE.md)")
		fmt.Printf("  interpreter: %.2fM instr/s block-cached, %.2fM decode-only, %.2fM uncached\n",
			p.InstrPerSec/1e6, p.InstrPerSecDecodeOnly/1e6, p.InstrPerSecUncached/1e6)
		fmt.Printf("  block cache: %.2fx over decode-only (hit rate %.1f%%, mean block %.1f insns)\n",
			p.BlockCacheSpeedup, p.BlockCacheHitRate*100, p.MeanBlockLen)
		fmt.Printf("  decode cache: %.2fx over uncached (hit rate %.1f%%)\n",
			p.DecodeCacheSpeedup, p.DecodeCacheHitRate*100)
		fmt.Printf("  restore:     %d words/request delta vs %d full copy (%.0fx fewer)\n",
			p.RestoreWordsPerRequest, p.RestoreWordsFullCopy, p.RestoreReduction)
		fmt.Printf("  serve:       p50 %.0f µs, p95 %.0f µs over %d notary requests (%d-word docs)\n",
			p.ServeP50Micros, p.ServeP95Micros, p.Requests, p.DocWords)
		fmt.Println()
	}
	if out.Batch != nil {
		fmt.Println("Batched signing A/B (crossings per signed request; docs/BATCHING.md)")
		fmt.Printf("  %-14s %8s %10s %10s %10s %10s %8s\n",
			"config", "signed", "crossings", "xings/ok", "req/s", "p50 µs", "meanK")
		base := out.Batch[0]
		for _, r := range out.Batch {
			fmt.Printf("  %-14s %8d %10d %10.3f %10.1f %10.0f %8.1f",
				r.Config, r.Requests, r.Crossings, r.CrossingsPerOK, r.Throughput, r.P50Micros, r.MeanBatch)
			if r.BatchSize > 0 && r.CrossingsPerOK > 0 {
				fmt.Printf("  (%.1fx fewer crossings)", base.CrossingsPerOK/r.CrossingsPerOK)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	if out.WritePath != nil {
		fmt.Println("Adaptive write path (durable counters, checkpoint every sign; docs/PERFORMANCE.md)")
		fmt.Printf("  %-22s %8s %-8s %8s %10s %10s %8s %6s %8s %10s\n",
			"config", "clients", "skew", "signed", "xings/ok", "fsyncs/ok", "dedup", "K", "meanGrp", "p50 µs")
		for _, r := range out.WritePath {
			fmt.Printf("  %-22s %8d %-8s %8d %10.3f %10.3f %8d %6d %8.1f %10.0f\n",
				r.Config, r.Clients, r.Skew, r.Requests, r.CrossingsPerOK, r.FsyncsPerOK,
				r.Dedup, r.KFinal, r.MeanGroup, r.P50Micros)
		}
		fmt.Println()
	}
	if out.Table2 != nil {
		fmt.Println("Table 2 analogue: line counts of this reproduction")
		fmt.Printf("  %-52s %8s %8s %8s\n", "Component", "spec", "impl", "proof")
		var ts, ti, tp int
		for _, r := range out.Table2 {
			fmt.Printf("  %-52s %8d %8d %8d\n", r.Component, r.Spec, r.Impl, r.Proof)
			ts += r.Spec
			ti += r.Impl
			tp += r.Proof
		}
		fmt.Printf("  %-52s %8d %8d %8d\n", "Total", ts, ti, tp)
		fmt.Println("\nPaper's Table 2 (for comparison):")
		fmt.Printf("  %-52s %8s %8s %8s\n", "Component", "spec", "impl", "proof")
		for _, r := range out.PaperTable2 {
			fmt.Printf("  %-52s %8d %8d %8d\n", r.Component, r.Spec, r.Impl, r.Proof)
		}
	}
}
