// komodo-bench regenerates the paper's evaluation: Table 3, the §8.1 SGX
// comparison, Figure 5, and the Table 2 line-count breakdown. With no
// flags it prints everything.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/eval"
)

func main() {
	t3 := flag.Bool("table3", false, "print only the Table 3 microbenchmarks")
	sgxOnly := flag.Bool("sgx", false, "print only the SGX crossing comparison (§8.1)")
	f5 := flag.Bool("figure5", false, "print only the Figure 5 notary series")
	t2 := flag.Bool("table2", false, "print only the Table 2 line-count breakdown")
	abl := flag.Bool("ablation", false, "print only the crossing-optimisation ablation")
	root := flag.String("root", ".", "module root for the line-count breakdown")
	flag.Parse()
	all := !*t3 && !*sgxOnly && !*f5 && !*t2 && !*abl

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "komodo-bench:", err)
		os.Exit(1)
	}

	if all || *t3 {
		rows, err := eval.Table3()
		if err != nil {
			fail(err)
		}
		fmt.Println("Table 3: Microbenchmark results (simulated cycles vs. paper's Raspberry Pi 2)")
		fmt.Printf("  %-14s %-42s %10s %10s\n", "Operation", "Notes", "cycles", "paper")
		for _, r := range rows {
			fmt.Printf("  %-14s %-42s %10d %10d\n", r.Operation, r.Notes, r.Cycles, r.PaperCycles)
		}
		fmt.Println()
	}
	if all || *abl {
		rows, err := eval.Ablation()
		if err != nil {
			fail(err)
		}
		fmt.Println("Ablation: §8.1 crossing optimisations (cycles per full crossing)")
		fmt.Printf("  %-46s %10s %10s\n", "Configuration", "cold", "hot")
		for _, r := range rows {
			fmt.Printf("  %-46s %10d %10d\n", r.Config, r.FirstCrossing, r.RepeatCrossing)
		}
		fmt.Println()
	}
	if all || *sgxOnly {
		rows, err := eval.SGXComparison()
		if err != nil {
			fail(err)
		}
		fmt.Println("SGX comparison (§8.1): enclave crossing latency")
		fmt.Printf("  %-18s %12s %12s %8s\n", "Operation", "Komodo", "SGX model", "ratio")
		for _, r := range rows {
			fmt.Printf("  %-18s %12d %12d %7.1fx\n", r.Operation, r.Komodo, r.SGX, float64(r.SGX)/float64(r.Komodo))
		}
		fmt.Println()
	}
	if all || *f5 {
		pts, err := eval.Figure5(eval.Figure5Sizes)
		if err != nil {
			fail(err)
		}
		fmt.Println("Figure 5: Notary performance (time to notarise vs. input size, 900 MHz clock)")
		fmt.Printf("  %8s %14s %14s %8s\n", "size", "enclave (ms)", "native (ms)", "ratio")
		for _, p := range pts {
			fmt.Printf("  %6dkB %14.3f %14.3f %8.3f\n", p.KB, p.EnclaveMS, p.NativeMS, p.EnclaveMS/p.NativeMS)
		}
		fmt.Println()
	}
	if all || *t2 {
		rows, err := eval.CountLines(*root)
		if err != nil {
			fail(err)
		}
		fmt.Println("Table 2 analogue: line counts of this reproduction")
		fmt.Printf("  %-52s %8s %8s %8s\n", "Component", "spec", "impl", "proof")
		var ts, ti, tp int
		for _, r := range rows {
			fmt.Printf("  %-52s %8d %8d %8d\n", r.Component, r.Spec, r.Impl, r.Proof)
			ts += r.Spec
			ti += r.Impl
			tp += r.Proof
		}
		fmt.Printf("  %-52s %8d %8d %8d\n", "Total", ts, ti, tp)
		fmt.Println("\nPaper's Table 2 (for comparison):")
		fmt.Printf("  %-52s %8s %8s %8s\n", "Component", "spec", "impl", "proof")
		for _, r := range eval.PaperTable2Rows() {
			fmt.Printf("  %-52s %8d %8d %8d\n", r.Component, r.Spec, r.Impl, r.Proof)
		}
	}
}
