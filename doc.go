// Package repro is the root of the Komodo reproduction (SOSP 2017,
// "Komodo: Using verification to disentangle secure-enclave hardware from
// software"). The public library lives in ./komodo; the simulated platform,
// monitor, specification, and verification harnesses live under
// ./internal; bench_test.go in this directory regenerates the paper's
// evaluation tables and figures. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package repro
